#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <utility>

namespace asset {

namespace {

uint32_t Fnv1a(const uint8_t* data, size_t len) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutBytes(std::vector<uint8_t>* out, const std::vector<uint8_t>& b) {
  PutU32(out, static_cast<uint32_t>(b.size()));
  out->insert(out->end(), b.begin(), b.end());
}

bool GetU32(const std::vector<uint8_t>& in, size_t* off, uint32_t* v) {
  if (*off + 4 > in.size()) return false;
  *v = static_cast<uint32_t>(in[*off]) |
       (static_cast<uint32_t>(in[*off + 1]) << 8) |
       (static_cast<uint32_t>(in[*off + 2]) << 16) |
       (static_cast<uint32_t>(in[*off + 3]) << 24);
  *off += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& in, size_t* off, uint64_t* v) {
  uint32_t lo, hi;
  if (!GetU32(in, off, &lo) || !GetU32(in, off, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool GetBytes(const std::vector<uint8_t>& in, size_t* off,
              std::vector<uint8_t>* b) {
  uint32_t len;
  if (!GetU32(in, off, &len)) return false;
  if (*off + len > in.size()) return false;
  b->assign(in.begin() + *off, in.begin() + *off + len);
  *off += len;
  return true;
}

/// pwrite of the whole buffer at `offset`, retrying EINTR and short
/// writes (both are legal kernel behaviour, not errors).
Status WriteFully(int fd, const uint8_t* data, size_t len, off_t offset) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pwrite(fd, data + done, len - done,
                         offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite log file: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError("pwrite log file: wrote 0 bytes");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncRetry(int fd) {
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    return Status::IOError("fsync: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeI64(int64_t v) {
  std::vector<uint8_t> out(sizeof(int64_t));
  std::memcpy(out.data(), &v, sizeof(int64_t));
  return out;
}

Result<int64_t> DecodeI64(const std::vector<uint8_t>& bytes) {
  if (bytes.size() != sizeof(int64_t)) {
    return Status::Corruption("i64 payload size mismatch");
  }
  int64_t v;
  std::memcpy(&v, bytes.data(), sizeof(int64_t));
  return v;
}

void LogRecord::EncodeTo(std::vector<uint8_t>* out) const {
  std::vector<uint8_t> body;
  body.push_back(static_cast<uint8_t>(type));
  PutU64(&body, lsn);
  PutU64(&body, tid);
  PutU64(&body, other_tid);
  PutU64(&body, oid);
  PutU64(&body, undo_of);
  PutBytes(&body, before);
  PutBytes(&body, after);
  PutU32(&body, static_cast<uint32_t>(oid_set.size()));
  for (ObjectId id : oid_set) PutU64(&body, id);

  PutU32(out, static_cast<uint32_t>(body.size()));
  PutU32(out, Fnv1a(body.data(), body.size()));
  out->insert(out->end(), body.begin(), body.end());
}

Result<LogRecord> LogRecord::DecodeFrom(const std::vector<uint8_t>& data,
                                        size_t* offset) {
  if (*offset == data.size()) {
    return Status::NotFound("end of log");
  }
  size_t off = *offset;
  uint32_t len, crc;
  if (!GetU32(data, &off, &len) || !GetU32(data, &off, &crc) ||
      off + len > data.size()) {
    return Status::Corruption("torn log record frame");
  }
  if (Fnv1a(data.data() + off, len) != crc) {
    return Status::Corruption("log record checksum mismatch");
  }
  size_t body_end = off + len;
  LogRecord rec;
  uint8_t type_byte = data[off++];
  if (type_byte < static_cast<uint8_t>(LogRecordType::kBegin) ||
      type_byte > static_cast<uint8_t>(LogRecordType::kIncrement)) {
    return Status::Corruption("unknown log record type");
  }
  rec.type = static_cast<LogRecordType>(type_byte);
  uint32_t nset = 0;
  if (!GetU64(data, &off, &rec.lsn) || !GetU64(data, &off, &rec.tid) ||
      !GetU64(data, &off, &rec.other_tid) || !GetU64(data, &off, &rec.oid) ||
      !GetU64(data, &off, &rec.undo_of) ||
      !GetBytes(data, &off, &rec.before) ||
      !GetBytes(data, &off, &rec.after) || !GetU32(data, &off, &nset)) {
    return Status::Corruption("truncated log record body");
  }
  rec.oid_set.resize(nset);
  for (uint32_t i = 0; i < nset; ++i) {
    if (!GetU64(data, &off, &rec.oid_set[i])) {
      return Status::Corruption("truncated delegate set");
    }
  }
  if (off != body_end) {
    return Status::Corruption("log record body length mismatch");
  }
  *offset = body_end;
  return rec;
}

LogManager::LogManager(FlushMode mode)
    : mode_(mode), io_status_(Status::OK()), injected_error_(Status::OK()) {
  if (mode_ == FlushMode::kGrouped) {
    flusher_ = std::thread([this] { FlusherMain(); });
  }
}

LogManager::~LogManager() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  flush_cv_.notify_all();
  durable_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) ::close(fd_);
}

Status LogManager::AttachFile(const std::string& path) {
  std::lock_guard<std::mutex> g(mu_);
  if (!records_.empty()) {
    return Status::IllegalState("AttachFile must precede any Append");
  }
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) {
    return Status::IOError("lseek: " + std::string(std::strerror(errno)));
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0) {
    ssize_t n = ::pread(fd_, bytes.data(), bytes.size(), 0);
    if (n != size) {
      return Status::IOError("short read of log file");
    }
  }
  size_t off = 0;
  size_t good_end = 0;
  for (;;) {
    auto rec = LogRecord::DecodeFrom(bytes, &off);
    if (!rec.ok()) {
      // Clean end or a torn tail from a crash mid-append: both end the
      // durable prefix. Truncate the file to the last whole record.
      break;
    }
    records_.push_back(std::move(rec).value());
    good_end = off;
  }
  if (good_end != bytes.size()) {
    if (::ftruncate(fd_, static_cast<off_t>(good_end)) != 0) {
      return Status::IOError("ftruncate: " +
                             std::string(std::strerror(errno)));
    }
  }
  // From here on every write lands at the tracked append offset; the
  // file is never lseek'd again.
  file_end_ = static_cast<off_t>(good_end);
  durable_lsn_ = static_cast<Lsn>(records_.size());
  requested_lsn_ = durable_lsn_;
  buf_first_ = durable_lsn_;
  for (Lsn l = 1; l <= durable_lsn_; ++l) {
    if (records_[l - 1].type == LogRecordType::kCheckpoint) {
      last_checkpoint_ = l;
    }
  }
  return Status::OK();
}

Lsn LogManager::Append(LogRecord rec) {
  std::lock_guard<std::mutex> g(mu_);
  rec.lsn = static_cast<Lsn>(records_.size() + 1);
  Lsn lsn = rec.lsn;
  if (fd_ >= 0) {
    // Encode now, into the in-memory log buffer, so the flusher never
    // touches `records_` (a deque being push_back'd concurrently) and a
    // flush is a single contiguous byte range.
    rec.EncodeTo(&buf_);
    ends_.push_back(buf_.size());
  }
  records_.push_back(std::move(rec));
  if (sink_.appends != nullptr) {
    sink_.appends->fetch_add(1, std::memory_order_relaxed);
  }
  return lsn;
}

Status LogManager::Flush(Lsn upto) {
  std::unique_lock<std::mutex> lk(mu_);
  Lsn target = (upto == kNullLsn) ? static_cast<Lsn>(records_.size()) : upto;
  if (target > records_.size()) {
    return Status::InvalidArgument("flush beyond end of log");
  }
  if (target <= durable_lsn_) {
    return Status::OK();
  }
  if (!io_status_.ok()) {
    return io_status_;
  }
  requested_lsn_ = std::max(requested_lsn_, target);
  if (mode_ == FlushMode::kSynchronous) {
    return FlushInlineLocked(target);
  }
  flush_cv_.notify_one();
  const uint64_t epoch = crash_epoch_;
  durable_cv_.wait(lk, [&] {
    return durable_lsn_ >= target || !io_status_.ok() || stop_ ||
           crash_epoch_ != epoch;
  });
  if (durable_lsn_ >= target) return Status::OK();
  if (!io_status_.ok()) return io_status_;
  if (crash_epoch_ != epoch) {
    return Status::IllegalState(
        "log crashed during flush wait: the awaited tail was discarded");
  }
  return Status::IllegalState("log shut down during flush wait");
}

Status LogManager::RequestFlush(Lsn lsn) {
  std::unique_lock<std::mutex> lk(mu_);
  Lsn end = static_cast<Lsn>(records_.size());
  Lsn target = (lsn == kNullLsn) ? end : std::min(lsn, end);
  if (target <= durable_lsn_) return Status::OK();
  // Sticky failure: nothing past durable_lsn_ will ever land, so the
  // nudge must not be a silent OK — relaxed commits surface this.
  if (!io_status_.ok()) return io_status_;
  requested_lsn_ = std::max(requested_lsn_, target);
  if (mode_ == FlushMode::kSynchronous) {
    return FlushInlineLocked(target);
  }
  flush_cv_.notify_one();
  return Status::OK();
}

void LogManager::FlusherMain() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    flush_cv_.wait(lk, [&] {
      return stop_ || (requested_lsn_ > durable_lsn_ && io_status_.ok());
    });
    if (stop_ && (requested_lsn_ <= durable_lsn_ || !io_status_.ok())) {
      return;  // drained (or wedged on a sticky error): shut down
    }
    const Lsn from = durable_lsn_;
    const Lsn target =
        std::min(requested_lsn_, static_cast<Lsn>(records_.size()));
    if (target <= from) continue;

    if (!injected_error_.ok()) {
      Status err = std::exchange(injected_error_, Status::OK());
      CompleteFlushLocked(from, target, 0, err, false);
      continue;
    }
    if (fd_ < 0) {
      // No device: the batch becomes durable by fiat.
      CompleteFlushLocked(from, target, 0, Status::OK(), false);
      continue;
    }

    auto [lo, hi] = BatchRangeLocked(from, target);
    std::vector<uint8_t> batch(buf_.begin() + static_cast<ptrdiff_t>(lo),
                               buf_.begin() + static_cast<ptrdiff_t>(hi));
    const off_t write_at = file_end_;
    const int fd = fd_;
    std::function<void()> hook = fsync_hook_;
    flush_in_progress_ = true;
    lk.unlock();

    // Device I/O happens here, with no lock held: appenders keep
    // reserving lsns and committers keep queueing requests meanwhile.
    Status io = WriteFully(fd, batch.data(), batch.size(), write_at);
    if (io.ok()) {
      if (hook) hook();
      io = FsyncRetry(fd);
    }

    lk.lock();
    CompleteFlushLocked(from, target, batch.size(), io, /*did_sync=*/io.ok());
  }
}

std::pair<size_t, size_t> LogManager::BatchRangeLocked(Lsn from,
                                                       Lsn target) const {
  assert(from >= buf_first_ && target > from);
  assert(target - buf_first_ <= ends_.size());
  size_t lo = (from == buf_first_) ? 0 : ends_[from - buf_first_ - 1];
  size_t hi = ends_[target - buf_first_ - 1];
  return {lo, hi};
}

void LogManager::CompleteFlushLocked(Lsn from, Lsn target, size_t nbytes,
                                     const Status& io, bool did_sync) {
  if (io.ok()) {
    for (Lsn l = from + 1; l <= target; ++l) {
      if (records_[l - 1].type == LogRecordType::kCheckpoint) {
        last_checkpoint_ = l;
      }
    }
    durable_lsn_ = target;
    if (fd_ >= 0) {
      file_end_ += static_cast<off_t>(nbytes);
      // Drop the consumed prefix of the log buffer. Appends may have
      // extended it while the I/O ran; only the flushed range goes.
      size_t n_recs = static_cast<size_t>(target - buf_first_);
      ends_.erase(ends_.begin(),
                  ends_.begin() + static_cast<ptrdiff_t>(n_recs));
      if (nbytes > 0) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(nbytes));
        for (size_t& e : ends_) e -= nbytes;
      }
      buf_first_ = target;
    }
    if (sink_.records_flushed != nullptr) {
      sink_.records_flushed->fetch_add(target - from,
                                       std::memory_order_relaxed);
    }
    if (did_sync && sink_.fsyncs != nullptr) {
      sink_.fsyncs->fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Sticky: the tail may be torn on disk; nothing past `from` may be
    // acknowledged, now or later. Waiters see the error.
    io_status_ = io;
  }
  flush_in_progress_ = false;
  durable_cv_.notify_all();
}

Status LogManager::FlushInlineLocked(Lsn target) {
  if (!injected_error_.ok()) {
    Status err = std::exchange(injected_error_, Status::OK());
    CompleteFlushLocked(durable_lsn_, target, 0, err, false);
    return io_status_;
  }
  if (fd_ < 0) {
    CompleteFlushLocked(durable_lsn_, target, 0, Status::OK(), false);
    return Status::OK();
  }
  auto [lo, hi] = BatchRangeLocked(durable_lsn_, target);
  Status io = WriteFully(fd_, buf_.data() + lo, hi - lo, file_end_);
  if (io.ok()) {
    if (fsync_hook_) fsync_hook_();
    io = FsyncRetry(fd_);
  }
  CompleteFlushLocked(durable_lsn_, target, hi - lo, io, /*did_sync=*/io.ok());
  return io.ok() ? Status::OK() : io_status_;
}

Lsn LogManager::last_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return static_cast<Lsn>(records_.size());
}

Lsn LogManager::durable_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return durable_lsn_;
}

Lsn LogManager::last_checkpoint_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return last_checkpoint_;
}

void LogManager::SimulateCrash() {
  std::unique_lock<std::mutex> lk(mu_);
  // Let an in-flight flush land or fail first, so the durable boundary
  // we truncate to is the one the disk actually has.
  durable_cv_.wait(lk, [&] { return !flush_in_progress_; });
  records_.resize(durable_lsn_);
  requested_lsn_ = durable_lsn_;
  buf_.clear();
  ends_.clear();
  buf_first_ = durable_lsn_;
  // Flush waiters whose target died with the tail would otherwise sleep
  // forever (their lsn can never become durable now); the epoch bump
  // wakes them into an IllegalState return.
  ++crash_epoch_;
  durable_cv_.notify_all();
}

LogRecord LogManager::At(Lsn lsn) const {
  std::lock_guard<std::mutex> g(mu_);
  assert(lsn >= 1 && lsn <= records_.size());
  return records_[lsn - 1];
}

std::vector<LogRecord> LogManager::ReadAll() const {
  std::lock_guard<std::mutex> g(mu_);
  return {records_.begin(), records_.end()};
}

std::vector<LogRecord> LogManager::ReadDurable() const {
  std::lock_guard<std::mutex> g(mu_);
  return {records_.begin(), records_.begin() + durable_lsn_};
}

std::vector<uint8_t> LogManager::SerializeDurable() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<uint8_t> out;
  for (Lsn l = 1; l <= durable_lsn_; ++l) {
    records_[l - 1].EncodeTo(&out);
  }
  return out;
}

Result<std::vector<LogRecord>> LogManager::Deserialize(
    const std::vector<uint8_t>& bytes) {
  std::vector<LogRecord> out;
  size_t off = 0;
  for (;;) {
    auto rec = LogRecord::DecodeFrom(bytes, &off);
    if (!rec.ok()) {
      if (rec.status().IsNotFound()) break;  // clean end
      return rec.status();
    }
    out.push_back(std::move(rec).value());
  }
  return out;
}

size_t LogManager::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return records_.size();
}

void LogManager::BindStats(const WalStatsSink& sink) {
  std::lock_guard<std::mutex> g(mu_);
  sink_ = sink;
}

void LogManager::UnbindStats(const WalStatsSink& sink) {
  std::lock_guard<std::mutex> g(mu_);
  if (sink_.appends == sink.appends && sink_.fsyncs == sink.fsyncs &&
      sink_.records_flushed == sink.records_flushed) {
    sink_ = WalStatsSink{};
  }
}

void LogManager::InjectFlushErrorForTest(Status error) {
  std::lock_guard<std::mutex> g(mu_);
  injected_error_ = std::move(error);
}

void LogManager::SetFsyncHookForTest(std::function<void()> hook) {
  std::lock_guard<std::mutex> g(mu_);
  fsync_hook_ = std::move(hook);
}

std::thread::id LogManager::flusher_thread_id_for_test() const {
  return flusher_.get_id();
}

}  // namespace asset
