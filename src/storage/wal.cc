#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <utility>

#include "storage/io_util.h"

namespace asset {

namespace {

uint32_t Fnv1a(const uint8_t* data, size_t len) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutBytes(std::vector<uint8_t>* out, const std::vector<uint8_t>& b) {
  PutU32(out, static_cast<uint32_t>(b.size()));
  out->insert(out->end(), b.begin(), b.end());
}

bool GetU32(const std::vector<uint8_t>& in, size_t* off, uint32_t* v) {
  if (*off + 4 > in.size()) return false;
  *v = static_cast<uint32_t>(in[*off]) |
       (static_cast<uint32_t>(in[*off + 1]) << 8) |
       (static_cast<uint32_t>(in[*off + 2]) << 16) |
       (static_cast<uint32_t>(in[*off + 3]) << 24);
  *off += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& in, size_t* off, uint64_t* v) {
  uint32_t lo, hi;
  if (!GetU32(in, off, &lo) || !GetU32(in, off, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool GetBytes(const std::vector<uint8_t>& in, size_t* off,
              std::vector<uint8_t>* b) {
  uint32_t len;
  if (!GetU32(in, off, &len)) return false;
  if (*off + len > in.size()) return false;
  b->assign(in.begin() + *off, in.begin() + *off + len);
  *off += len;
  return true;
}

/// Rough wire size of a record (header + fixed body + payloads); used
/// for the appended-bytes counter when the log is not file-backed.
size_t EstimateEncodedSize(const LogRecord& rec) {
  return 61 + rec.before.size() + rec.after.size() + 8 * rec.oid_set.size();
}

}  // namespace

std::vector<uint8_t> FuzzyCheckpointImage::Encode() const {
  std::vector<uint8_t> out;
  PutU64(&out, begin_lsn);
  PutU64(&out, min_recovery_lsn);
  PutU32(&out, static_cast<uint32_t>(active.size()));
  for (const TxnEntry& e : active) {
    PutU64(&out, e.tid);
    PutU32(&out, static_cast<uint32_t>(e.ops.size()));
    for (Lsn l : e.ops) PutU64(&out, l);
  }
  PutU32(&out, static_cast<uint32_t>(dirty_pages.size()));
  for (const auto& [page, rec_lsn] : dirty_pages) {
    PutU32(&out, page);
    PutU64(&out, rec_lsn);
  }
  return out;
}

Result<FuzzyCheckpointImage> FuzzyCheckpointImage::Decode(
    const std::vector<uint8_t>& bytes) {
  FuzzyCheckpointImage img;
  size_t off = 0;
  uint32_t n_active = 0;
  if (!GetU64(bytes, &off, &img.begin_lsn) ||
      !GetU64(bytes, &off, &img.min_recovery_lsn) ||
      !GetU32(bytes, &off, &n_active)) {
    return Status::Corruption("truncated fuzzy checkpoint header");
  }
  img.active.resize(n_active);
  for (TxnEntry& e : img.active) {
    uint32_t n_ops = 0;
    if (!GetU64(bytes, &off, &e.tid) || !GetU32(bytes, &off, &n_ops)) {
      return Status::Corruption("truncated fuzzy checkpoint ATT entry");
    }
    e.ops.resize(n_ops);
    for (Lsn& l : e.ops) {
      if (!GetU64(bytes, &off, &l)) {
        return Status::Corruption("truncated fuzzy checkpoint ATT ops");
      }
    }
  }
  uint32_t n_dirty = 0;
  if (!GetU32(bytes, &off, &n_dirty)) {
    return Status::Corruption("truncated fuzzy checkpoint DPT count");
  }
  img.dirty_pages.resize(n_dirty);
  for (auto& [page, rec_lsn] : img.dirty_pages) {
    if (!GetU32(bytes, &off, &page) || !GetU64(bytes, &off, &rec_lsn)) {
      return Status::Corruption("truncated fuzzy checkpoint DPT entry");
    }
  }
  if (off != bytes.size()) {
    return Status::Corruption("fuzzy checkpoint payload length mismatch");
  }
  return img;
}

std::vector<uint8_t> EncodeI64(int64_t v) {
  std::vector<uint8_t> out(sizeof(int64_t));
  std::memcpy(out.data(), &v, sizeof(int64_t));
  return out;
}

Result<int64_t> DecodeI64(const std::vector<uint8_t>& bytes) {
  if (bytes.size() != sizeof(int64_t)) {
    return Status::Corruption("i64 payload size mismatch");
  }
  int64_t v;
  std::memcpy(&v, bytes.data(), sizeof(int64_t));
  return v;
}

void LogRecord::EncodeTo(std::vector<uint8_t>* out) const {
  std::vector<uint8_t> body;
  body.push_back(static_cast<uint8_t>(type));
  PutU64(&body, lsn);
  PutU64(&body, tid);
  PutU64(&body, other_tid);
  PutU64(&body, oid);
  PutU64(&body, undo_of);
  PutBytes(&body, before);
  PutBytes(&body, after);
  PutU32(&body, static_cast<uint32_t>(oid_set.size()));
  for (ObjectId id : oid_set) PutU64(&body, id);

  PutU32(out, static_cast<uint32_t>(body.size()));
  PutU32(out, Fnv1a(body.data(), body.size()));
  out->insert(out->end(), body.begin(), body.end());
}

Result<LogRecord> LogRecord::DecodeFrom(const std::vector<uint8_t>& data,
                                        size_t* offset) {
  if (*offset == data.size()) {
    return Status::NotFound("end of log");
  }
  size_t off = *offset;
  uint32_t len, crc;
  if (!GetU32(data, &off, &len) || !GetU32(data, &off, &crc) ||
      off + len > data.size()) {
    return Status::Corruption("torn log record frame");
  }
  if (Fnv1a(data.data() + off, len) != crc) {
    return Status::Corruption("log record checksum mismatch");
  }
  size_t body_end = off + len;
  LogRecord rec;
  uint8_t type_byte = data[off++];
  if (type_byte < static_cast<uint8_t>(LogRecordType::kBegin) ||
      type_byte > static_cast<uint8_t>(LogRecordType::kFuzzyCheckpoint)) {
    return Status::Corruption("unknown log record type");
  }
  rec.type = static_cast<LogRecordType>(type_byte);
  uint32_t nset = 0;
  if (!GetU64(data, &off, &rec.lsn) || !GetU64(data, &off, &rec.tid) ||
      !GetU64(data, &off, &rec.other_tid) || !GetU64(data, &off, &rec.oid) ||
      !GetU64(data, &off, &rec.undo_of) ||
      !GetBytes(data, &off, &rec.before) ||
      !GetBytes(data, &off, &rec.after) || !GetU32(data, &off, &nset)) {
    return Status::Corruption("truncated log record body");
  }
  rec.oid_set.resize(nset);
  for (uint32_t i = 0; i < nset; ++i) {
    if (!GetU64(data, &off, &rec.oid_set[i])) {
      return Status::Corruption("truncated delegate set");
    }
  }
  if (off != body_end) {
    return Status::Corruption("log record body length mismatch");
  }
  *offset = body_end;
  return rec;
}

LogManager::LogManager(FlushMode mode)
    : mode_(mode), io_status_(Status::OK()), injected_error_(Status::OK()) {
  if (mode_ == FlushMode::kGrouped) {
    flusher_ = std::thread([this] { FlusherMain(); });
  }
}

LogManager::~LogManager() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  flush_cv_.notify_all();
  durable_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) ::close(fd_);
}

Status LogManager::AttachFile(const std::string& path) {
  std::lock_guard<std::mutex> g(mu_);
  if (!records_.empty()) {
    return Status::IllegalState("AttachFile must precede any Append");
  }
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) {
    return Status::IOError("lseek: " + std::string(std::strerror(errno)));
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0) {
    ssize_t n = ::pread(fd_, bytes.data(), bytes.size(), 0);
    if (n != size) {
      return Status::IOError("short read of log file");
    }
  }
  size_t off = 0;
  size_t good_end = 0;
  for (;;) {
    auto rec = LogRecord::DecodeFrom(bytes, &off);
    if (!rec.ok()) {
      // Clean end or a torn tail from a crash mid-append: both end the
      // durable prefix. Truncate the file to the last whole record.
      break;
    }
    records_.push_back(std::move(rec).value());
    good_end = off;
  }
  if (good_end != bytes.size()) {
    if (::ftruncate(fd_, static_cast<off_t>(good_end)) != 0) {
      return Status::IOError("ftruncate: " +
                             std::string(std::strerror(errno)));
    }
  }
  // From here on every write lands at the tracked append offset; the
  // file is never lseek'd again.
  path_ = path;
  file_end_ = static_cast<off_t>(good_end);
  appended_bytes_ = good_end;
  // A previous process may have truncated the prefix: the file then
  // starts at some lsn > 1. Each frame carries its lsn, so the dropped
  // prefix length is recoverable from the first record.
  truncated_ = records_.empty() ? 0 : records_.front().lsn - 1;
  durable_lsn_ = truncated_ + static_cast<Lsn>(records_.size());
  requested_lsn_ = durable_lsn_;
  buf_first_ = durable_lsn_;
  for (const LogRecord& r : records_) {
    if (r.type == LogRecordType::kCheckpoint) {
      last_checkpoint_ = r.lsn;
      checkpoint_min_recovery_ = r.lsn;
    } else if (r.type == LogRecordType::kFuzzyCheckpoint) {
      auto img = FuzzyCheckpointImage::Decode(r.after);
      last_checkpoint_ = r.lsn;
      // An undecodable image cannot happen short of corruption the
      // checksum missed; degrade to "never truncate" rather than lose
      // records recovery may need.
      checkpoint_min_recovery_ = img.ok() ? img.value().min_recovery_lsn : 1;
    }
  }
  return Status::OK();
}

Lsn LogManager::Append(LogRecord rec) {
  std::lock_guard<std::mutex> g(mu_);
  rec.lsn = truncated_ + static_cast<Lsn>(records_.size()) + 1;
  Lsn lsn = rec.lsn;
  if (fd_ >= 0) {
    // Encode now, into the in-memory log buffer, so the flusher never
    // touches `records_` (a deque being push_back'd concurrently) and a
    // flush is a single contiguous byte range.
    size_t before_sz = buf_.size();
    rec.EncodeTo(&buf_);
    ends_.push_back(buf_.size());
    appended_bytes_ += buf_.size() - before_sz;
  } else {
    appended_bytes_ += EstimateEncodedSize(rec);
  }
  if (sink_.recorder != nullptr) {
    sink_.recorder->Emit(TraceEventType::kWalAppend, rec.tid, rec.other_tid,
                         rec.oid, lsn);
  }
  records_.push_back(std::move(rec));
  if (sink_.appends != nullptr) {
    sink_.appends->fetch_add(1, std::memory_order_relaxed);
  }
  return lsn;
}

Status LogManager::Flush(Lsn upto) {
  std::unique_lock<std::mutex> lk(mu_);
  const Lsn end = truncated_ + static_cast<Lsn>(records_.size());
  Lsn target = (upto == kNullLsn) ? end : upto;
  if (target > end) {
    return Status::InvalidArgument("flush beyond end of log");
  }
  if (target <= durable_lsn_) {
    return Status::OK();
  }
  if (!io_status_.ok()) {
    return io_status_;
  }
  requested_lsn_ = std::max(requested_lsn_, target);
  if (mode_ == FlushMode::kSynchronous) {
    return FlushInlineLocked(target);
  }
  flush_cv_.notify_one();
  const uint64_t epoch = crash_epoch_;
  durable_cv_.wait(lk, [&] {
    return durable_lsn_ >= target || !io_status_.ok() || stop_ ||
           crash_epoch_ != epoch;
  });
  if (durable_lsn_ >= target) return Status::OK();
  if (!io_status_.ok()) return io_status_;
  if (crash_epoch_ != epoch) {
    return Status::IllegalState(
        "log crashed during flush wait: the awaited tail was discarded");
  }
  return Status::IllegalState("log shut down during flush wait");
}

Status LogManager::RequestFlush(Lsn lsn) {
  std::unique_lock<std::mutex> lk(mu_);
  Lsn end = truncated_ + static_cast<Lsn>(records_.size());
  Lsn target = (lsn == kNullLsn) ? end : std::min(lsn, end);
  if (target <= durable_lsn_) return Status::OK();
  // Sticky failure: nothing past durable_lsn_ will ever land, so the
  // nudge must not be a silent OK — relaxed commits surface this.
  if (!io_status_.ok()) return io_status_;
  requested_lsn_ = std::max(requested_lsn_, target);
  if (mode_ == FlushMode::kSynchronous) {
    return FlushInlineLocked(target);
  }
  flush_cv_.notify_one();
  return Status::OK();
}

void LogManager::FlusherMain() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    flush_cv_.wait(lk, [&] {
      return stop_ || (requested_lsn_ > durable_lsn_ && io_status_.ok());
    });
    if (stop_ && (requested_lsn_ <= durable_lsn_ || !io_status_.ok())) {
      return;  // drained (or wedged on a sticky error): shut down
    }
    const Lsn from = durable_lsn_;
    const Lsn target = std::min(
        requested_lsn_, truncated_ + static_cast<Lsn>(records_.size()));
    if (target <= from) continue;

    if (!injected_error_.ok()) {
      Status err = std::exchange(injected_error_, Status::OK());
      CompleteFlushLocked(from, target, 0, err, false);
      continue;
    }
    if (fd_ < 0) {
      // No device: the batch becomes durable by fiat.
      CompleteFlushLocked(from, target, 0, Status::OK(), false);
      continue;
    }

    auto [lo, hi] = BatchRangeLocked(from, target);
    std::vector<uint8_t> batch(buf_.begin() + static_cast<ptrdiff_t>(lo),
                               buf_.begin() + static_cast<ptrdiff_t>(hi));
    const off_t write_at = file_end_;
    const int fd = fd_;
    std::function<void()> hook = fsync_hook_;
    flush_in_progress_ = true;
    lk.unlock();

    // Device I/O happens here, with no lock held: appenders keep
    // reserving lsns and committers keep queueing requests meanwhile.
    const int64_t io_start_ns = FlightRecorder::NowNs();
    Status io = PwriteFully(fd, batch.data(), batch.size(), write_at,
                            "log file");
    if (io.ok()) {
      if (hook) hook();
      io = FsyncRetry(fd);
    }
    const int64_t io_ns = FlightRecorder::NowNs() - io_start_ns;

    lk.lock();
    CompleteFlushLocked(from, target, batch.size(), io, /*did_sync=*/io.ok(),
                        io_ns);
  }
}

std::pair<size_t, size_t> LogManager::BatchRangeLocked(Lsn from,
                                                       Lsn target) const {
  assert(from >= buf_first_ && target > from);
  assert(target - buf_first_ <= ends_.size());
  size_t lo = (from == buf_first_) ? 0 : ends_[from - buf_first_ - 1];
  size_t hi = ends_[target - buf_first_ - 1];
  return {lo, hi};
}

void LogManager::CompleteFlushLocked(Lsn from, Lsn target, size_t nbytes,
                                     const Status& io, bool did_sync,
                                     int64_t io_ns) {
  if (io.ok()) {
    for (Lsn l = from + 1; l <= target; ++l) {
      const LogRecord& r = records_[l - 1 - truncated_];
      if (r.type == LogRecordType::kCheckpoint) {
        last_checkpoint_ = l;
        checkpoint_min_recovery_ = l;
      } else if (r.type == LogRecordType::kFuzzyCheckpoint) {
        auto img = FuzzyCheckpointImage::Decode(r.after);
        last_checkpoint_ = l;
        // We encoded this payload ourselves; a decode failure degrades
        // to "never truncate" instead of risking needed records.
        checkpoint_min_recovery_ = img.ok() ? img.value().min_recovery_lsn : 1;
      }
    }
    durable_lsn_ = target;
    if (fd_ >= 0) {
      file_end_ += static_cast<off_t>(nbytes);
      // Drop the consumed prefix of the log buffer. Appends may have
      // extended it while the I/O ran; only the flushed range goes.
      size_t n_recs = static_cast<size_t>(target - buf_first_);
      ends_.erase(ends_.begin(),
                  ends_.begin() + static_cast<ptrdiff_t>(n_recs));
      if (nbytes > 0) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(nbytes));
        for (size_t& e : ends_) e -= nbytes;
      }
      buf_first_ = target;
    }
    if (sink_.records_flushed != nullptr) {
      sink_.records_flushed->fetch_add(target - from,
                                       std::memory_order_relaxed);
    }
    if (did_sync) {
      if (sink_.fsyncs != nullptr) {
        sink_.fsyncs->fetch_add(1, std::memory_order_relaxed);
      }
      if (io_ns < 0) io_ns = 0;
      if (sink_.fsync_hist != nullptr) {
        sink_.fsync_hist->Record(static_cast<uint64_t>(io_ns));
      }
      if (sink_.recorder != nullptr) {
        sink_.recorder->Emit(TraceEventType::kWalFsync, kNullTid, kNullTid,
                             kNullObjectId, target, io_ns);
      }
    }
  } else {
    // Sticky: the tail may be torn on disk; nothing past `from` may be
    // acknowledged, now or later. Waiters see the error.
    io_status_ = io;
  }
  flush_in_progress_ = false;
  durable_cv_.notify_all();
}

Status LogManager::FlushInlineLocked(Lsn target) {
  if (!injected_error_.ok()) {
    Status err = std::exchange(injected_error_, Status::OK());
    CompleteFlushLocked(durable_lsn_, target, 0, err, false);
    return io_status_;
  }
  if (fd_ < 0) {
    CompleteFlushLocked(durable_lsn_, target, 0, Status::OK(), false);
    return Status::OK();
  }
  auto [lo, hi] = BatchRangeLocked(durable_lsn_, target);
  const int64_t io_start_ns = FlightRecorder::NowNs();
  Status io = PwriteFully(fd_, buf_.data() + lo, hi - lo, file_end_,
                          "log file");
  if (io.ok()) {
    if (fsync_hook_) fsync_hook_();
    io = FsyncRetry(fd_);
  }
  const int64_t io_ns = FlightRecorder::NowNs() - io_start_ns;
  CompleteFlushLocked(durable_lsn_, target, hi - lo, io, /*did_sync=*/io.ok(),
                      io_ns);
  return io.ok() ? Status::OK() : io_status_;
}

Lsn LogManager::last_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return truncated_ + static_cast<Lsn>(records_.size());
}

Lsn LogManager::durable_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return durable_lsn_;
}

Lsn LogManager::last_checkpoint_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return last_checkpoint_;
}

Lsn LogManager::checkpoint_min_recovery_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return checkpoint_min_recovery_;
}

uint64_t LogManager::appended_bytes() const {
  std::lock_guard<std::mutex> g(mu_);
  return appended_bytes_;
}

void LogManager::SimulateCrash() {
  std::unique_lock<std::mutex> lk(mu_);
  // Let an in-flight flush land or fail first, so the durable boundary
  // we truncate to is the one the disk actually has.
  durable_cv_.wait(lk, [&] { return !flush_in_progress_; });
  records_.resize(durable_lsn_ - truncated_);
  requested_lsn_ = durable_lsn_;
  buf_.clear();
  ends_.clear();
  buf_first_ = durable_lsn_;
  // Flush waiters whose target died with the tail would otherwise sleep
  // forever (their lsn can never become durable now); the epoch bump
  // wakes them into an IllegalState return.
  ++crash_epoch_;
  durable_cv_.notify_all();
}

LogRecord LogManager::At(Lsn lsn) const {
  std::lock_guard<std::mutex> g(mu_);
  assert(lsn > truncated_ && lsn <= truncated_ + records_.size());
  return records_[lsn - 1 - truncated_];
}

std::vector<LogRecord> LogManager::ReadAll() const {
  std::lock_guard<std::mutex> g(mu_);
  return {records_.begin(), records_.end()};
}

std::vector<LogRecord> LogManager::ReadDurable() const {
  std::lock_guard<std::mutex> g(mu_);
  return {records_.begin(),
          records_.begin() + static_cast<ptrdiff_t>(durable_lsn_ - truncated_)};
}

std::vector<uint8_t> LogManager::SerializeDurable() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<uint8_t> out;
  for (Lsn l = truncated_ + 1; l <= durable_lsn_; ++l) {
    records_[l - 1 - truncated_].EncodeTo(&out);
  }
  return out;
}

Result<std::vector<LogRecord>> LogManager::Deserialize(
    const std::vector<uint8_t>& bytes) {
  std::vector<LogRecord> out;
  size_t off = 0;
  for (;;) {
    auto rec = LogRecord::DecodeFrom(bytes, &off);
    if (!rec.ok()) {
      if (rec.status().IsNotFound()) break;  // clean end
      return rec.status();
    }
    out.push_back(std::move(rec).value());
  }
  return out;
}

size_t LogManager::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return records_.size();
}

Result<size_t> LogManager::TruncatePrefix(Lsn upto) {
  std::unique_lock<std::mutex> lk(mu_);
  // Wait out an in-flight flush: while we hold mu_ after this, no new
  // flush can start, so the durable boundary and the file are stable.
  durable_cv_.wait(lk, [&] { return !flush_in_progress_; });
  if (!io_status_.ok()) {
    return Status::IllegalState(
        "refusing to truncate a log with a sticky I/O error: " +
        io_status_.message());
  }
  // Safety rule: never drop a record the last durable checkpoint still
  // points at. No durable checkpoint -> nothing is provably redundant.
  const Lsn bound =
      (checkpoint_min_recovery_ == kNullLsn) ? 0 : checkpoint_min_recovery_ - 1;
  Lsn target = std::min(bound, durable_lsn_);
  if (upto != kNullLsn) target = std::min(target, upto);
  if (target <= truncated_) return static_cast<size_t>(0);
  const size_t dropped = static_cast<size_t>(target - truncated_);

  if (fd_ >= 0) {
    // Rewrite the retained durable suffix to a temp file and rename it
    // over the log: a crash at any point leaves either the old file or
    // the new one, both decodable (each frame carries its lsn, so
    // AttachFile re-derives the dropped-prefix length). The volatile
    // tail stays in buf_; future flushes append at the new file end.
    std::vector<uint8_t> out;
    for (Lsn l = target + 1; l <= durable_lsn_; ++l) {
      records_[l - 1 - truncated_].EncodeTo(&out);
    }
    const std::string tmp = path_ + ".truncate.tmp";
    int tfd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (tfd < 0) {
      return Status::IOError("open " + tmp + ": " + std::strerror(errno));
    }
    Status io = PwriteFully(tfd, out.data(), out.size(), 0, "truncated log");
    if (io.ok()) io = FsyncRetry(tfd);
    if (io.ok() && ::rename(tmp.c_str(), path_.c_str()) != 0) {
      io = Status::IOError("rename " + tmp + ": " + std::strerror(errno));
    }
    if (!io.ok()) {
      ::close(tfd);
      ::unlink(tmp.c_str());
      return io;
    }
    // Persist the rename itself.
    const size_t slash = path_.find_last_of('/');
    const std::string dir =
        (slash == std::string::npos)
            ? "."
            : (slash == 0 ? "/" : path_.substr(0, slash));
    int dfd = ::open(dir.c_str(), O_RDONLY);
    if (dfd >= 0) {
      (void)FsyncRetry(dfd);
      ::close(dfd);
    }
    ::close(fd_);
    fd_ = tfd;
    file_end_ = static_cast<off_t>(out.size());
  }

  records_.erase(records_.begin(),
                 records_.begin() + static_cast<ptrdiff_t>(dropped));
  truncated_ = target;
  if (sink_.truncations != nullptr) {
    sink_.truncations->fetch_add(1, std::memory_order_relaxed);
  }
  if (sink_.records_truncated != nullptr) {
    sink_.records_truncated->fetch_add(dropped, std::memory_order_relaxed);
  }
  return dropped;
}

LogManager::ApplyGuard::ApplyGuard(LogManager* log) : log_(log) {
  std::lock_guard<std::mutex> g(log_->mu_);
  // Lower bound: the guard is constructed before Append assigns the
  // lsn, so the operation's lsn is >= current end + 1.
  it_ = log_->applying_.insert(log_->truncated_ +
                               static_cast<Lsn>(log_->records_.size()) + 1);
}

LogManager::ApplyGuard::~ApplyGuard() {
  {
    std::lock_guard<std::mutex> g(log_->mu_);
    log_->applying_.erase(it_);
  }
  log_->apply_cv_.notify_all();
}

Lsn LogManager::OldestApplying() const {
  std::lock_guard<std::mutex> g(mu_);
  return applying_.empty() ? kNullLsn : *applying_.begin();
}

Status LogManager::WaitAppliedThrough(Lsn lsn,
                                      std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  bool drained = apply_cv_.wait_for(lk, timeout, [&] {
    return applying_.empty() || *applying_.begin() > lsn;
  });
  if (!drained) {
    return Status::TimedOut("in-flight data operations did not drain");
  }
  return Status::OK();
}

void LogManager::BindStats(const WalStatsSink& sink) {
  std::lock_guard<std::mutex> g(mu_);
  sink_ = sink;
}

void LogManager::UnbindStats(const WalStatsSink& sink) {
  std::lock_guard<std::mutex> g(mu_);
  if (sink_.appends == sink.appends && sink_.fsyncs == sink.fsyncs &&
      sink_.records_flushed == sink.records_flushed &&
      sink_.truncations == sink.truncations &&
      sink_.records_truncated == sink.records_truncated &&
      sink_.fsync_hist == sink.fsync_hist &&
      sink_.recorder == sink.recorder) {
    sink_ = WalStatsSink{};
  }
}

void LogManager::InjectFlushErrorForTest(Status error) {
  std::lock_guard<std::mutex> g(mu_);
  injected_error_ = std::move(error);
}

void LogManager::SetFsyncHookForTest(std::function<void()> hook) {
  std::lock_guard<std::mutex> g(mu_);
  fsync_hook_ = std::move(hook);
}

std::thread::id LogManager::flusher_thread_id_for_test() const {
  return flusher_.get_id();
}

}  // namespace asset
