#ifndef ASSET_STORAGE_DISK_MANAGER_H_
#define ASSET_STORAGE_DISK_MANAGER_H_

/// \file disk_manager.h
/// Page-granular stable storage.
///
/// Two implementations: an in-memory one for tests/benchmarks (with a
/// fault-injection hook so recovery tests can simulate crashes at exact
/// write boundaries), and a POSIX-file one for real persistence.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/io_util.h"

namespace asset {

/// Abstract page-granular storage device. All methods are thread-safe.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Reads page `page_id` into `frame` (kPageSize bytes).
  virtual Status ReadPage(PageId page_id, uint8_t* frame) = 0;

  /// Writes `frame` (kPageSize bytes) to page `page_id`.
  virtual Status WritePage(PageId page_id, const uint8_t* frame) = 0;

  /// Extends the device by one page and returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  /// Number of pages allocated so far.
  virtual PageId NumPages() const = 0;

  /// Forces previously written pages to stable storage.
  virtual Status Sync() = 0;
};

/// RAM-backed device. Pages survive "crashes" that drop caches but not
/// process exit — exactly what recovery unit tests need.
class InMemoryDiskManager : public DiskManager {
 public:
  InMemoryDiskManager() = default;

  Status ReadPage(PageId page_id, uint8_t* frame) override;
  Status WritePage(PageId page_id, const uint8_t* frame) override;
  Result<PageId> AllocatePage() override;
  PageId NumPages() const override;
  Status Sync() override { return Status::OK(); }

  /// When set, every write first consults the hook; a non-OK return is
  /// surfaced to the caller and the write is dropped (simulating a crash
  /// or I/O error mid-stream).
  using WriteFault = std::function<Status(PageId)>;
  void SetWriteFault(WriteFault fault);

  /// Deep copy of the device contents. The crash-point fuzzer pairs
  /// these with WAL prefixes to rebuild the exact disk a crash would
  /// have left behind.
  std::vector<std::vector<uint8_t>> SnapshotForTest() const;
  /// Replaces the device contents with `snapshot`.
  void RestoreForTest(const std::vector<std::vector<uint8_t>>& snapshot);

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  WriteFault fault_;
};

/// POSIX-file-backed device. The file grows in page units.
class FileDiskManager : public DiskManager {
 public:
  /// Opens (creating if needed) `path`. Check `status()` after
  /// construction.
  explicit FileDiskManager(const std::string& path);
  ~FileDiskManager() override;

  /// Result of opening the backing file.
  const Status& status() const { return open_status_; }

  Status ReadPage(PageId page_id, uint8_t* frame) override;
  Status WritePage(PageId page_id, const uint8_t* frame) override;
  Result<PageId> AllocatePage() override;
  PageId NumPages() const override;
  Status Sync() override;

  /// Substitutes the raw pread/pwrite syscalls (nullptr restores the
  /// real ones). Fault tests inject EINTR and short transfers here to
  /// prove the full-transfer retry loops around every page I/O.
  void SetIoFnsForTest(PreadFn pread_fn, PwriteFn pwrite_fn);

 private:
  mutable std::mutex mu_;
  Status open_status_;
  int fd_ = -1;
  PageId num_pages_ = 0;
  PreadFn pread_fn_;
  PwriteFn pwrite_fn_;
};

}  // namespace asset

#endif  // ASSET_STORAGE_DISK_MANAGER_H_
