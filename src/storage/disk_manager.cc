#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/page.h"

namespace asset {

// ---------------------------------------------------------------------------
// InMemoryDiskManager

Status InMemoryDiskManager::ReadPage(PageId page_id, uint8_t* frame) {
  std::lock_guard<std::mutex> g(mu_);
  if (page_id >= pages_.size()) {
    return Status::NotFound("page " + std::to_string(page_id) +
                            " beyond device end");
  }
  std::memcpy(frame, pages_[page_id].get(), kPageSize);
  return Status::OK();
}

Status InMemoryDiskManager::WritePage(PageId page_id, const uint8_t* frame) {
  std::lock_guard<std::mutex> g(mu_);
  if (page_id >= pages_.size()) {
    return Status::NotFound("page " + std::to_string(page_id) +
                            " beyond device end");
  }
  if (fault_) {
    Status s = fault_(page_id);
    if (!s.ok()) return s;
  }
  std::memcpy(pages_[page_id].get(), frame, kPageSize);
  return Status::OK();
}

Result<PageId> InMemoryDiskManager::AllocatePage() {
  std::lock_guard<std::mutex> g(mu_);
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(buf.get(), 0, kPageSize);
  pages_.push_back(std::move(buf));
  return static_cast<PageId>(pages_.size() - 1);
}

PageId InMemoryDiskManager::NumPages() const {
  std::lock_guard<std::mutex> g(mu_);
  return static_cast<PageId>(pages_.size());
}

void InMemoryDiskManager::SetWriteFault(WriteFault fault) {
  std::lock_guard<std::mutex> g(mu_);
  fault_ = std::move(fault);
}

std::vector<std::vector<uint8_t>> InMemoryDiskManager::SnapshotForTest()
    const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::vector<uint8_t>> out;
  out.reserve(pages_.size());
  for (const auto& p : pages_) {
    out.emplace_back(p.get(), p.get() + kPageSize);
  }
  return out;
}

void InMemoryDiskManager::RestoreForTest(
    const std::vector<std::vector<uint8_t>>& snapshot) {
  std::lock_guard<std::mutex> g(mu_);
  pages_.clear();
  for (const auto& src : snapshot) {
    auto buf = std::make_unique<uint8_t[]>(kPageSize);
    std::memcpy(buf.get(), src.data(), kPageSize);
    pages_.push_back(std::move(buf));
  }
}

// ---------------------------------------------------------------------------
// FileDiskManager

FileDiskManager::FileDiskManager(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    open_status_ =
        Status::IOError("open " + path + ": " + std::strerror(errno));
    return;
  }
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) {
    open_status_ = Status::IOError("lseek: " + std::string(strerror(errno)));
    return;
  }
  num_pages_ = static_cast<PageId>(size / kPageSize);
}

FileDiskManager::~FileDiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileDiskManager::ReadPage(PageId page_id, uint8_t* frame) {
  std::lock_guard<std::mutex> g(mu_);
  if (page_id >= num_pages_) {
    return Status::NotFound("page beyond device end");
  }
  // PreadFully retries EINTR and short reads — a single raw pread may
  // legally transfer fewer bytes than a page.
  return PreadFully(fd_, frame, kPageSize,
                    static_cast<off_t>(page_id) * kPageSize,
                    "page " + std::to_string(page_id), pread_fn_);
}

Status FileDiskManager::WritePage(PageId page_id, const uint8_t* frame) {
  std::lock_guard<std::mutex> g(mu_);
  if (page_id >= num_pages_) {
    return Status::NotFound("page beyond device end");
  }
  return PwriteFully(fd_, frame, kPageSize,
                     static_cast<off_t>(page_id) * kPageSize,
                     "page " + std::to_string(page_id), pwrite_fn_);
}

Result<PageId> FileDiskManager::AllocatePage() {
  std::lock_guard<std::mutex> g(mu_);
  uint8_t zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  Status s = PwriteFully(fd_, zeros, kPageSize,
                         static_cast<off_t>(num_pages_) * kPageSize,
                         "device extension", pwrite_fn_);
  if (!s.ok()) return s;
  return num_pages_++;
}

void FileDiskManager::SetIoFnsForTest(PreadFn pread_fn, PwriteFn pwrite_fn) {
  std::lock_guard<std::mutex> g(mu_);
  pread_fn_ = std::move(pread_fn);
  pwrite_fn_ = std::move(pwrite_fn);
}

PageId FileDiskManager::NumPages() const {
  std::lock_guard<std::mutex> g(mu_);
  return num_pages_;
}

Status FileDiskManager::Sync() {
  std::lock_guard<std::mutex> g(mu_);
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

}  // namespace asset
