#ifndef ASSET_STORAGE_OBJECT_STORE_H_
#define ASSET_STORAGE_OBJECT_STORE_H_

/// \file object_store.h
/// Variable-size persistent objects over the page cache.
///
/// This is the EOS-shaped surface the transaction kernel runs on: a
/// database is "a collection of persistent objects" (§2), each identified
/// by an ObjectId, read and written in place in the shared cache. Objects
/// are stored as page records prefixed by their 8-byte id; an in-memory
/// directory maps ids to (page, slot) and is rebuilt by scanning pages at
/// open time.
///
/// Thread-safety: reads share; any mutation is exclusive. (Object-level
/// isolation between transactions is the lock manager's job, one level
/// up; this mutex only protects the physical structures.)

#include <cstdint>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace asset {

/// A heap of persistent objects. One store owns the whole page device.
class ObjectStore {
 public:
  explicit ObjectStore(BufferPool* pool) : pool_(pool) {}

  /// Rebuilds the object directory by scanning every page on the device.
  /// Call once before use; also after recovery reopens a device.
  Status Open();

  /// Creates an object with a store-assigned id.
  Result<ObjectId> Create(std::span<const uint8_t> data);

  /// Reserves a fresh object id without creating anything. The
  /// transactional create path uses this to log the create
  /// (write-ahead) before materializing it with CreateWithId.
  ObjectId AllocateId();

  /// Largest object payload that fits in one page record.
  static size_t MaxObjectSize();

  /// Creates an object with a caller-chosen id (used by recovery redo and
  /// by applications with natural keys). Fails if the id exists.
  Status CreateWithId(ObjectId oid, std::span<const uint8_t> data);

  /// Copies the object's current value.
  Result<std::vector<uint8_t>> Read(ObjectId oid) const;

  /// Overwrites the object's value (size may change).
  Status Write(ObjectId oid, std::span<const uint8_t> data);

  /// Removes the object.
  Status Delete(ObjectId oid);

  bool Exists(ObjectId oid) const;
  size_t NumObjects() const;

  /// All live object ids (unordered). For scans, tests, recovery checks.
  std::vector<ObjectId> ListObjects() const;

  // Idempotent mutators used by recovery's repeat-history pass.
  /// Creates if absent, overwrites otherwise.
  Status ApplyPut(ObjectId oid, std::span<const uint8_t> data);
  /// Deletes if present; OK if absent.
  Status ApplyDelete(ObjectId oid);

  // --- Counters (semantic increment operations, paper §5) --------------
  //
  // A counter object is 16 bytes: [u64 applied_lsn][i64 value]. Deltas
  // are applied conditionally on the stored lsn, which makes delta
  // replay idempotent: recovery can repeat history without page lsns.

  /// Serialized counter image with the given state.
  static std::vector<uint8_t> EncodeCounter(Lsn applied_lsn, int64_t value);

  /// The counter's current value; kInvalidArgument if the object is not
  /// counter-shaped.
  Result<int64_t> ReadCounter(ObjectId oid) const;

  /// Adds `delta` to the counter iff `lsn` is newer than its stored
  /// applied-lsn, then stamps `lsn`. Returns the post-apply value.
  Result<int64_t> ApplyDelta(ObjectId oid, Lsn lsn, int64_t delta);

 private:
  struct Located {
    RecordId rid;
  };

  /// Builds the page record image ([oid][data]).
  static std::vector<uint8_t> MakeRecord(ObjectId oid,
                                         std::span<const uint8_t> data);

  /// Finds a page with room for `bytes` more, allocating if needed.
  /// Caller holds mu_ exclusively.
  Result<PageHandle> FindPageWithRoomLocked(size_t bytes);

  Status CreateLocked(ObjectId oid, std::span<const uint8_t> data);
  Status WriteLocked(ObjectId oid, std::span<const uint8_t> data);
  Status DeleteLocked(ObjectId oid);

  BufferPool* pool_;
  mutable std::shared_mutex mu_;
  std::unordered_map<ObjectId, Located> directory_;
  ObjectId next_oid_ = kFirstUserObjectId;
  /// Hint: page most recently found to have room.
  PageId last_insert_page_ = kInvalidPageId;
};

}  // namespace asset

#endif  // ASSET_STORAGE_OBJECT_STORE_H_
