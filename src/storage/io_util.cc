#include "storage/io_util.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace asset {

Status PreadFully(int fd, void* buf, size_t len, off_t offset,
                  const std::string& what, const PreadFn& fn) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < len) {
    ssize_t n =
        fn ? fn(fd, p + done, len - done, offset + static_cast<off_t>(done))
           : ::pread(fd, p + done, len - done,
                     offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread " + what + ": " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError("pread " + what + ": unexpected end of file");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PwriteFully(int fd, const void* buf, size_t len, off_t offset,
                   const std::string& what, const PwriteFn& fn) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < len) {
    ssize_t n =
        fn ? fn(fd, p + done, len - done, offset + static_cast<off_t>(done))
           : ::pwrite(fd, p + done, len - done,
                      offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite " + what + ": " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError("pwrite " + what + ": wrote 0 bytes");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncRetry(int fd) {
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    return Status::IOError("fsync: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace asset
