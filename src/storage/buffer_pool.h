#ifndef ASSET_STORAGE_BUFFER_POOL_H_
#define ASSET_STORAGE_BUFFER_POOL_H_

/// \file buffer_pool.h
/// The shared page cache.
///
/// The paper's mode of operation is "the application operates directly on
/// the objects in a shared cache" (§4). The buffer pool is that cache:
/// fixed number of frames, pin/unpin protocol, LRU eviction of clean or
/// dirty unpinned frames (steal), and explicit flushing (no force —
/// durability comes from the WAL).

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace asset {

class BufferPool;

/// RAII pin on a cached page. Move-only. The page stays resident while a
/// handle exists; call `MarkDirty()` after modifying the frame.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool Valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  /// View of the pinned frame.
  Page page() { return Page(frame_); }
  const uint8_t* frame() const { return frame_; }

  /// Records that the frame was modified; it will be written back before
  /// eviction or on flush.
  void MarkDirty();

  /// Drops the pin early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId page_id, uint8_t* frame)
      : pool_(pool), page_id_(page_id), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  PageId page_id_ = kInvalidPageId;
  uint8_t* frame_ = nullptr;
};

/// A fixed-capacity cache of pages over a DiskManager. Thread-safe.
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_writebacks = 0;
  };

  /// `capacity` is the number of page frames. When `wal` is given, the
  /// pool enforces the write-ahead rule: the log is forced before any
  /// dirty page reaches the device (eviction, FlushPage, FlushAll), so a
  /// stolen page can never carry effects the log does not know about.
  BufferPool(DiskManager* disk, size_t capacity, LogManager* wal = nullptr);

  /// Pins page `page_id`, reading it from disk on a miss. Fails with
  /// ResourceExhausted if every frame is pinned. With `validate` (the
  /// default), a frame read from disk must pass Page::Validate();
  /// recovery fetches without validation to inspect possibly-unformatted
  /// pages.
  Result<PageHandle> FetchPage(PageId page_id, bool validate = true);

  /// Allocates a fresh page on the device, formats it, and returns it
  /// pinned and dirty.
  Result<PageHandle> NewPage();

  /// Writes the page back if dirty. No-op if the page is not cached.
  Status FlushPage(PageId page_id);

  /// Writes back every dirty cached page and syncs the device.
  Status FlushAll();

  /// Online variant of FlushAll for the fuzzy checkpointer: writes back
  /// every dirty *unpinned* page without blocking concurrent traffic.
  /// One WAL force (outside the pool lock) covers the batch; each page
  /// is then written under a short lock hold, skipping pages that are
  /// pinned or were re-dirtied past the forced watermark — those simply
  /// stay dirty and appear in the checkpoint's dirty-page table.
  Status FlushUnpinned();

  /// The dirty-page table: every dirty cached page with its recovery
  /// lsn (lower bound on the lsn of any update the frame carries that
  /// is not yet on disk; kNullLsn = unknown, recovery treats it as 1).
  std::vector<std::pair<PageId, Lsn>> DirtyPageTable() const;

  /// min over the dirty-page table's recovery lsns (kNullLsn entries
  /// count as 1). kNullLsn if no page is dirty. Redo never needs to
  /// start earlier than this.
  Lsn MinRecoveryLsn() const;

  /// Simulates a crash: discards every cached frame, including dirty
  /// ones, without writing them back. Requires no outstanding pins.
  void DropAllUnflushed();

  Stats stats() const;
  size_t capacity() const { return frames_.size(); }

 private:
  friend class PageHandle;

  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    /// Write-ahead watermark: the log was at this lsn when the frame was
    /// last dirtied (an upper bound on the lsn of any update the frame
    /// carries, since the log record is appended before the store
    /// mutates the page). Forcing the WAL to here — not to its end —
    /// satisfies the write-ahead rule for this page without fsyncing
    /// the unrelated log tail. kNullLsn (no WAL, or unknown) degrades
    /// to a full-log force.
    Lsn page_lsn = kNullLsn;
    /// Recovery watermark: a lower bound on the lsn of any update the
    /// frame carries that may not be on disk, set when the frame goes
    /// clean -> dirty (from the log's oldest in-flight apply bound) and
    /// kept until the frame is written back. The fuzzy checkpoint's
    /// dirty-page table carries this; redo for the page starts here.
    /// kNullLsn = unknown (dirtied outside an ApplyGuard span, e.g.
    /// during recovery itself): recovery treats it as lsn 1, which
    /// disables truncation rather than risking a lost update.
    Lsn rec_lsn = kNullLsn;
    /// Position in lru_ when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(PageId page_id, bool dirty);

  /// Forces the WAL up to `page_lsn` (entire log when kNullLsn) before a
  /// dirty page may reach the device. Caller holds mu_.
  Status ForceWalLocked(Lsn page_lsn);

  /// Finds a free or evictable frame; caller holds mu_.
  Result<size_t> GrabFrameLocked();

  DiskManager* disk_;
  LogManager* wal_;
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = coldest
  std::unordered_map<PageId, size_t> page_table_;
  Stats stats_;
};

}  // namespace asset

#endif  // ASSET_STORAGE_BUFFER_POOL_H_
