#ifndef ASSET_STORAGE_PAGE_H_
#define ASSET_STORAGE_PAGE_H_

/// \file page.h
/// Slotted pages — the unit of storage and caching.
///
/// EOS (the paper's storage manager) stores variable-size objects on
/// pages in a shared cache. We reproduce that substrate with a classic
/// slotted-page layout:
///
///   [ PageHeader | slot directory (grows up) ... free ... records (grow down) ]
///
/// Each record holds one object: an 8-byte ObjectId header followed by the
/// object's bytes. Slots are never reused for a *different* object while
/// the page lives, so (page, slot) is a stable object locator; deleted
/// slots are tombstoned and reclaimed by Compact().

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"

namespace asset {

/// Size of every page in bytes.
inline constexpr size_t kPageSize = 8192;

/// Slot index within a page.
using SlotId = uint16_t;
inline constexpr SlotId kInvalidSlot = UINT16_MAX;

/// A (page, slot) object locator.
struct RecordId {
  PageId page_id = kInvalidPageId;
  SlotId slot_id = kInvalidSlot;

  bool Valid() const { return page_id != kInvalidPageId; }
  bool operator==(const RecordId&) const = default;
};

/// In-memory view over one page frame. `Page` does not own its buffer —
/// the buffer pool does — which keeps frames movable and recovery able to
/// operate on raw buffers.
class Page {
 public:
  /// Wraps `frame`, which must point at kPageSize writable bytes.
  explicit Page(uint8_t* frame) : data_(frame) {}

  /// Formats the frame as an empty page with the given id.
  void Init(PageId page_id);

  /// Returns OK if the header magic and checksum are consistent.
  /// Call after reading a frame from disk.
  Status Validate() const;

  /// Recomputes and stores the checksum. Call before writing to disk.
  void UpdateChecksum();

  PageId page_id() const { return header().page_id; }
  Lsn lsn() const { return header().lsn; }
  void set_lsn(Lsn lsn) { header().lsn = lsn; }

  /// Number of slots, including tombstones.
  uint16_t SlotCount() const { return header().slot_count; }

  /// Contiguous free bytes available for a new record of `size` bytes
  /// (including its slot entry).
  bool HasRoomFor(size_t size) const;

  /// Bytes reclaimable by Compact() (tombstoned record space).
  size_t GarbageBytes() const { return header().garbage_bytes; }

  /// Inserts a record; returns its slot, or ResourceExhausted if the page
  /// cannot fit it even after compaction.
  Result<SlotId> Insert(std::span<const uint8_t> record);

  /// Reads the record at `slot`. NotFound for tombstoned/invalid slots.
  Result<std::span<const uint8_t>> Read(SlotId slot) const;

  /// Overwrites the record at `slot`. Grows or shrinks in place when the
  /// tail record, otherwise relocates within the page; ResourceExhausted
  /// if the new size does not fit.
  Status Update(SlotId slot, std::span<const uint8_t> record);

  /// Tombstones the record at `slot`; its bytes become garbage.
  Status Delete(SlotId slot);

  /// True if `slot` currently holds a live record.
  bool IsLive(SlotId slot) const;

  /// Rewrites the page dropping tombstoned records; live slot ids are
  /// preserved (slots are stable locators).
  void Compact();

  /// Raw frame access, used by the disk manager and tests.
  uint8_t* raw() { return data_; }
  const uint8_t* raw() const { return data_; }

  /// Upper bound on a record that can live on an empty page.
  static constexpr size_t MaxRecordSize();

 private:
  struct Header {
    uint32_t magic;
    PageId page_id;
    Lsn lsn;
    uint16_t slot_count;
    uint16_t free_lower;   // first byte past the slot directory
    uint16_t free_upper;   // first byte of the record heap
    uint16_t garbage_bytes;
    uint32_t checksum;
  };
  struct Slot {
    uint16_t offset;  // 0 => tombstone
    uint16_t length;
  };

  static constexpr uint32_t kMagic = 0x41535354;  // "ASST"

  Header& header() { return *reinterpret_cast<Header*>(data_); }
  const Header& header() const {
    return *reinterpret_cast<const Header*>(data_);
  }
  Slot* slots() { return reinterpret_cast<Slot*>(data_ + sizeof(Header)); }
  const Slot* slots() const {
    return reinterpret_cast<const Slot*>(data_ + sizeof(Header));
  }

  uint32_t ComputeChecksum() const;

  uint8_t* data_;
};

constexpr size_t Page::MaxRecordSize() {
  return kPageSize - sizeof(Header) - sizeof(Slot);
}

}  // namespace asset

#endif  // ASSET_STORAGE_PAGE_H_
