#ifndef ASSET_STORAGE_WAL_H_
#define ASSET_STORAGE_WAL_H_

/// \file wal.h
/// Write-ahead log with before/after images and an asynchronous
/// group-commit pipeline.
///
/// The paper's write path (§4.2) logs the before image of an object, then
/// performs the write, then logs the after image; abort installs before
/// images (§4.2 abort step 2); commit places a commit record (§4.2 commit
/// step 4). We keep one record per update carrying both images.
///
/// Delegation (§2.2) transfers *responsibility* for uncommitted
/// operations between transactions. Because recovery must decide whether
/// an update wins by looking at the transaction that was responsible for
/// it *at the end*, delegation itself is logged (kDelegateAll /
/// kDelegateSet) and replayed during analysis.
///
/// Durability pipeline. The log is split into two sides so the append
/// fast path never waits on the disk:
///
///  - The *append* side assigns the lsn and, when the log is
///    file-backed, encodes the record into an in-memory log buffer —
///    all under one short critical section. Appending never performs
///    I/O and never blocks on a flush in progress.
///  - The *flush* side is a dedicated flusher thread. Committers (and
///    anyone else who needs durability) publish the lsn they need via
///    RequestFlush/WaitDurable; the flusher drains every requested
///    record in one pwrite at a tracked file offset plus one fsync,
///    advances `durable_lsn_`, and wakes all waiters. Concurrent
///    committers therefore piggyback on a single fsync — the paper's
///    group-commit (GC) economics applied to the storage layer.
///
/// I/O errors are sticky: once a flush fails, the failure Status is
/// surfaced to every current and future durability waiter, and the
/// durable boundary stops advancing (the tail may be torn on disk; a
/// re-attach truncates it, exactly like a crash).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"

namespace asset {

enum class LogRecordType : uint8_t {
  /// Transaction began executing.
  kBegin = 1,
  /// Object created by `tid`; `after` holds the initial value.
  kCreate = 2,
  /// Object updated by `tid`; `before` and `after` hold the images.
  kUpdate = 3,
  /// Object deleted by `tid`; `before` holds the last value.
  kDelete = 4,
  /// Transaction (and any group-committed peers) committed.
  kCommit = 5,
  /// Transaction aborted (its undo has been applied).
  kAbort = 6,
  /// delegate(tid, other_tid): all of tid's responsibility moved.
  kDelegateAll = 7,
  /// delegate(tid, other_tid, oid_set): responsibility for operations on
  /// the listed objects moved.
  kDelegateSet = 8,
  /// All dirty pages were flushed before this record; recovery may start
  /// here.
  kCheckpoint = 9,
  /// Compensation record: abort (runtime or recovery) restored object
  /// `oid` to the value in `after`; `undo_of` names the compensated
  /// update. Redo-only — never undone.
  kClrPut = 10,
  /// Compensation record: abort removed object `oid` (undoing a create).
  /// Redo-only.
  kClrDelete = 11,
  /// Commutative counter increment (§5 semantic operations): `after`
  /// holds the signed 64-bit delta. Applied conditionally on the
  /// counter's stored applied-lsn, so replay is idempotent despite
  /// being delta-based. A kIncrement with `undo_of` set is the
  /// compensation of an earlier increment (redo-only).
  kIncrement = 12,
  /// Online (fuzzy) checkpoint, taken while transactions keep running.
  /// `after` holds an encoded FuzzyCheckpointImage: the active
  /// transaction table (each active transaction's responsible-operation
  /// lsns), the dirty-page table (page -> recovery lsn), the cut point
  /// `begin_lsn`, and the derived `min_recovery_lsn`. Recovery starts
  /// its analysis after `begin_lsn` (seeding state from the image) and
  /// its redo at `min_recovery_lsn`.
  kFuzzyCheckpoint = 13,
};

/// The payload of a kFuzzyCheckpoint record: everything recovery needs
/// to avoid scanning the log from its origin, captured *without*
/// quiescing the kernel.
struct FuzzyCheckpointImage {
  /// One active (begun, unterminated) transaction at snapshot time and
  /// the lsns of the data operations it is currently responsible for
  /// (delegation already folded in — the kernel's responsible_ops).
  struct TxnEntry {
    Tid tid = kNullTid;
    std::vector<Lsn> ops;
  };

  /// The cut point: log end when the checkpoint began. Analysis resumes
  /// from begin_lsn + 1; every operation with lsn <= begin_lsn is
  /// covered by `active` (the checkpointer waits out in-flight applies
  /// before snapshotting).
  Lsn begin_lsn = kNullLsn;
  /// min(begin_lsn + 1, every active op lsn, every dirty-page recovery
  /// lsn): redo must start here, and the truncation safety rule is that
  /// no record with lsn >= min_recovery_lsn may ever be dropped while
  /// this is the last durable checkpoint.
  Lsn min_recovery_lsn = kNullLsn;
  /// Active transaction table (ATT).
  std::vector<TxnEntry> active;
  /// Dirty page table (DPT): page -> recovery lsn (lower bound on the
  /// lsn of any update the cached frame carries that may not be on
  /// disk). kNullLsn means "unknown"; recovery treats it as lsn 1.
  std::vector<std::pair<PageId, Lsn>> dirty_pages;

  std::vector<uint8_t> Encode() const;
  static Result<FuzzyCheckpointImage> Decode(const std::vector<uint8_t>& bytes);
};

/// Little-endian i64 payload helpers (kIncrement deltas).
std::vector<uint8_t> EncodeI64(int64_t v);
Result<int64_t> DecodeI64(const std::vector<uint8_t>& bytes);

/// One log record. `lsn` is assigned by LogManager::Append; lsns start at
/// 1 and are dense.
struct LogRecord {
  Lsn lsn = kNullLsn;
  LogRecordType type = LogRecordType::kBegin;
  Tid tid = kNullTid;
  Tid other_tid = kNullTid;  // delegate target
  ObjectId oid = kNullObjectId;
  /// For kClr*: the lsn of the update this record compensates.
  Lsn undo_of = kNullLsn;
  std::vector<uint8_t> before;
  std::vector<uint8_t> after;
  std::vector<ObjectId> oid_set;  // kDelegateSet only

  /// Wire encoding: length-prefixed, checksummed frame.
  void EncodeTo(std::vector<uint8_t>* out) const;

  /// Decodes one record starting at `data + *offset`; advances *offset.
  /// Returns NotFound on a clean end of log, Corruption on a torn or
  /// damaged frame.
  static Result<LogRecord> DecodeFrom(const std::vector<uint8_t>& data,
                                      size_t* offset);
};

/// Pointers into a stats aggregate (KernelStats in practice) that the
/// log bumps as it works. Raw atomics rather than the struct itself so
/// the storage layer does not depend on the kernel's headers. All
/// pointers may be null.
struct WalStatsSink {
  std::atomic<uint64_t>* appends = nullptr;
  std::atomic<uint64_t>* fsyncs = nullptr;
  std::atomic<uint64_t>* records_flushed = nullptr;
  std::atomic<uint64_t>* truncations = nullptr;
  std::atomic<uint64_t>* records_truncated = nullptr;
  /// Per-flush pwrite+fsync duration samples (kernel's fsync_latency).
  LatencyHistogram* fsync_hist = nullptr;
  /// Flight recorder for kWalAppend / kWalFsync events.
  FlightRecorder* recorder = nullptr;
};

/// Append-only log. Thread-safe. Records become *durable* only when
/// flushed; SimulateCrash() discards the non-durable tail, which is how
/// recovery tests model power loss.
///
/// Optionally file-backed: AttachFile() loads the records persisted by
/// a previous process and makes every subsequent flush append the newly
/// durable records to the file and fsync it.
class LogManager {
 public:
  enum class FlushMode : uint8_t {
    /// Default: the dedicated flusher thread performs all file I/O;
    /// durability waiters from concurrent committers piggyback on one
    /// pwrite+fsync per batch.
    kGrouped,
    /// Reference mode: Flush/WaitDurable perform the pwrite+fsync on
    /// the calling thread, under the log mutex, one batch per caller —
    /// the pre-pipeline behaviour. Used by benchmarks as the
    /// synchronous-fsync baseline and by single-threaded embedders that
    /// prefer no background thread.
    kSynchronous,
  };

  LogManager() : LogManager(FlushMode::kGrouped) {}
  explicit LogManager(FlushMode mode);
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Binds the log to `path`: existing records are loaded (all durable),
  /// future flushes append. Must be called before any Append. A torn
  /// tail from a mid-write crash is truncated, not an error.
  Status AttachFile(const std::string& path);

  /// Appends `rec`, assigning and returning its lsn. Never performs I/O
  /// and never waits for a flush in progress.
  Lsn Append(LogRecord rec);

  /// Makes all records with lsn <= `upto` durable (everything, if
  /// kNullLsn) and blocks until they are. Exactly `upto` is made
  /// durable, never more: the volatile tail beyond it stays volatile,
  /// which crash tests (and the buffer pool's page_lsn flushes) rely
  /// on. InvalidArgument if `upto` is beyond the end of the log; the
  /// sticky I/O error if a flush failed; IllegalState if SimulateCrash
  /// discarded the awaited tail while we slept.
  Status Flush(Lsn upto = kNullLsn);

  /// Blocks until `durable_lsn() >= lsn` or the log hits an I/O error,
  /// requesting a flush if one is needed. Equivalent to Flush(lsn); the
  /// name the commit path uses.
  Status WaitDurable(Lsn lsn) { return Flush(lsn); }

  /// Asks the flusher to make records up to `lsn` (everything, if
  /// kNullLsn) durable without waiting. The relaxed-durability commit
  /// path uses this: the ack does not wait, but the flusher persists
  /// the commit record soon after. Returns OK without waiting for the
  /// I/O — unless the log already carries a sticky flush failure, which
  /// is returned so even no-wait committers learn the disk is gone
  /// (records past durable_lsn() will never land). In kSynchronous mode
  /// this flushes inline (there is no flusher to hand off to) and
  /// returns that flush's status.
  Status RequestFlush(Lsn lsn = kNullLsn);

  Lsn last_lsn() const;
  Lsn durable_lsn() const;

  /// Lsn of the most recent durable checkpoint record, or kNullLsn.
  Lsn last_checkpoint_lsn() const;

  /// The last durable checkpoint's min_recovery_lsn (for a legacy
  /// quiescent kCheckpoint this is the checkpoint record's own lsn), or
  /// kNullLsn if no checkpoint is durable. Records strictly below this
  /// lsn are redundant and eligible for TruncatePrefix.
  Lsn checkpoint_min_recovery_lsn() const;

  /// Physically drops the log prefix made redundant by the last durable
  /// checkpoint. The target is min(`upto`, durable_lsn(),
  /// checkpoint_min_recovery_lsn() - 1); pass kNullLsn to truncate as
  /// far as is safe. Returns the number of records dropped (0 is a
  /// legal no-op, e.g. when no checkpoint is durable yet). For a
  /// file-backed log the retained records are rewritten to a temp file
  /// which atomically replaces the log, so a crash during truncation
  /// leaves either the old or the new file. IllegalState if the log
  /// already carries a sticky I/O error (the durable boundary is not
  /// trustworthy then).
  Result<size_t> TruncatePrefix(Lsn upto = kNullLsn);

  /// Total bytes ever appended (estimate; monotonic, survives
  /// truncation). The background checkpointer's log-bytes trigger
  /// watches the delta of this counter.
  uint64_t appended_bytes() const;

  /// RAII tracker for an in-flight data-operation apply: the span
  /// between appending a data record and the store mutation + kernel
  /// bookkeeping becoming visible. Construct *before* Append so the
  /// registered lower bound (current end + 1) is <= the lsn the append
  /// will assign. The fuzzy checkpointer uses WaitAppliedThrough to
  /// drain applies at or below its cut point before snapshotting the
  /// active-transaction table, so no operation can fall between "not in
  /// the ATT yet" and "lsn <= begin_lsn".
  class ApplyGuard {
   public:
    explicit ApplyGuard(LogManager* log);
    ~ApplyGuard();
    ApplyGuard(const ApplyGuard&) = delete;
    ApplyGuard& operator=(const ApplyGuard&) = delete;

   private:
    LogManager* log_;
    std::multiset<Lsn>::iterator it_;
  };

  /// Smallest lower bound among in-flight applies, or kNullLsn if none.
  /// Any data record with lsn < OldestApplying() has fully applied.
  Lsn OldestApplying() const;

  /// Blocks until every in-flight apply has a lower bound > `lsn` (so
  /// all data operations with lsn <= `lsn` are fully applied and
  /// registered with the kernel). TimedOut if `timeout` elapses first.
  Status WaitAppliedThrough(Lsn lsn, std::chrono::milliseconds timeout);

  /// Drops every record that was never flushed. Waits out a flush in
  /// progress first so the durable boundary is stable. Concurrent
  /// Flush/WaitDurable waiters whose target was discarded wake with
  /// IllegalState instead of sleeping forever.
  void SimulateCrash();

  /// Copy of record `lsn` (1-based). Must exist and must not have been
  /// truncated away.
  LogRecord At(Lsn lsn) const;

  /// Copies of all retained records, durable and not — the runtime
  /// view. After TruncatePrefix the first record's lsn is > 1.
  std::vector<LogRecord> ReadAll() const;

  /// Copies of retained durable records only — the recovery view.
  std::vector<LogRecord> ReadDurable() const;

  /// Serializes retained durable records to bytes (for file shipping)
  /// and back.
  std::vector<uint8_t> SerializeDurable() const;
  static Result<std::vector<LogRecord>> Deserialize(
      const std::vector<uint8_t>& bytes);

  /// Physically retained records (appended minus truncated).
  size_t size() const;

  /// Points the log's counters at a stats aggregate (the kernel's
  /// KernelStats). UnbindStats detaches only if `sink` is the one
  /// currently bound, so a stale owner cannot clear a newer binding.
  void BindStats(const WalStatsSink& sink);
  void UnbindStats(const WalStatsSink& sink);

  // --- Test hooks -------------------------------------------------------

  /// Makes the next flush attempt fail with `error` instead of touching
  /// the device, as a failing disk would. The error then sticks.
  void InjectFlushErrorForTest(Status error);

  /// Invoked immediately before each fsync, on the thread that issues
  /// it. Tests use this to assert *where* fsyncs happen (the flusher
  /// thread, never a thread inside the kernel).
  void SetFsyncHookForTest(std::function<void()> hook);

  /// Identity of the flusher thread (kGrouped mode only).
  std::thread::id flusher_thread_id_for_test() const;

 private:
  /// Body of the dedicated flusher thread (kGrouped mode).
  void FlusherMain();

  /// Byte range of records (from, target] in buf_. Caller holds mu_.
  std::pair<size_t, size_t> BatchRangeLocked(Lsn from, Lsn target) const;

  /// Bookkeeping after a flush attempt of (from, target] that wrote
  /// `nbytes` (0 when not file-backed): advances the durable boundary
  /// and checkpoint watermark, trims the consumed buffer prefix, bumps
  /// counters (`io_ns` — the pwrite+fsync wall time — feeds the fsync
  /// histogram and trace event when did_sync) — or records the sticky
  /// error. Caller holds mu_.
  void CompleteFlushLocked(Lsn from, Lsn target, size_t nbytes,
                           const Status& io, bool did_sync,
                           int64_t io_ns = 0);

  /// kSynchronous-mode flush of records up to `target`, inline under
  /// mu_ (the caller pays the pwrite+fsync — the reference behaviour).
  Status FlushInlineLocked(Lsn target);

  mutable std::mutex mu_;
  /// Wakes the flusher (new request, shutdown).
  std::condition_variable flush_cv_;
  /// Wakes durability waiters (boundary advanced, error, flush done).
  std::condition_variable durable_cv_;

  const FlushMode mode_;
  /// Retained records; records_[i] holds lsn truncated_ + 1 + i. The
  /// log's end lsn is truncated_ + records_.size().
  std::deque<LogRecord> records_;
  /// Count of records physically dropped by TruncatePrefix (== highest
  /// truncated lsn; the retained log starts at truncated_ + 1).
  Lsn truncated_ = 0;
  Lsn durable_lsn_ = kNullLsn;
  Lsn last_checkpoint_ = kNullLsn;
  /// min_recovery_lsn of the last durable checkpoint (== the record's
  /// own lsn for legacy quiescent checkpoints), kNullLsn if none.
  Lsn checkpoint_min_recovery_ = kNullLsn;
  /// Highest lsn any waiter or nudge asked to make durable.
  Lsn requested_lsn_ = kNullLsn;
  /// Sticky: first flush failure; OK while the log is healthy.
  Status io_status_;
  /// Consumed by the next flush attempt (test fault injection).
  Status injected_error_;
  bool flush_in_progress_ = false;
  bool stop_ = false;
  /// Bumped by SimulateCrash; lets sleeping durability waiters detect
  /// that the tail holding their target was discarded.
  uint64_t crash_epoch_ = 0;

  /// Lower bounds of in-flight data-operation applies (see ApplyGuard).
  std::multiset<Lsn> applying_;
  /// Wakes WaitAppliedThrough when an apply completes.
  std::condition_variable apply_cv_;
  /// Estimated bytes ever appended (monotonic).
  uint64_t appended_bytes_ = 0;

  /// File descriptor of the attached log file, or -1.
  int fd_ = -1;
  /// Path of the attached log file (TruncatePrefix rewrites it).
  std::string path_;
  /// Tracked append offset: end of the durable bytes in the file. The
  /// flusher writes at this offset instead of trusting lseek(SEEK_END).
  off_t file_end_ = 0;

  /// In-memory log buffer (file-backed logs only): the wire encoding of
  /// records (buf_first_, buf_first_ + ends_.size()], appended by
  /// Append, consumed from the front by flushes. ends_[i] is the end
  /// offset in buf_ of record buf_first_ + 1 + i.
  std::vector<uint8_t> buf_;
  std::deque<size_t> ends_;
  Lsn buf_first_ = kNullLsn;

  WalStatsSink sink_;
  std::function<void()> fsync_hook_;
  std::thread flusher_;
};

}  // namespace asset

#endif  // ASSET_STORAGE_WAL_H_
