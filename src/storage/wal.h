#ifndef ASSET_STORAGE_WAL_H_
#define ASSET_STORAGE_WAL_H_

/// \file wal.h
/// Write-ahead log with before/after images.
///
/// The paper's write path (§4.2) logs the before image of an object, then
/// performs the write, then logs the after image; abort installs before
/// images (§4.2 abort step 2); commit places a commit record (§4.2 commit
/// step 4). We keep one record per update carrying both images.
///
/// Delegation (§2.2) transfers *responsibility* for uncommitted
/// operations between transactions. Because recovery must decide whether
/// an update wins by looking at the transaction that was responsible for
/// it *at the end*, delegation itself is logged (kDelegateAll /
/// kDelegateSet) and replayed during analysis.

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"

namespace asset {

enum class LogRecordType : uint8_t {
  /// Transaction began executing.
  kBegin = 1,
  /// Object created by `tid`; `after` holds the initial value.
  kCreate = 2,
  /// Object updated by `tid`; `before` and `after` hold the images.
  kUpdate = 3,
  /// Object deleted by `tid`; `before` holds the last value.
  kDelete = 4,
  /// Transaction (and any group-committed peers) committed.
  kCommit = 5,
  /// Transaction aborted (its undo has been applied).
  kAbort = 6,
  /// delegate(tid, other_tid): all of tid's responsibility moved.
  kDelegateAll = 7,
  /// delegate(tid, other_tid, oid_set): responsibility for operations on
  /// the listed objects moved.
  kDelegateSet = 8,
  /// All dirty pages were flushed before this record; recovery may start
  /// here.
  kCheckpoint = 9,
  /// Compensation record: abort (runtime or recovery) restored object
  /// `oid` to the value in `after`; `undo_of` names the compensated
  /// update. Redo-only — never undone.
  kClrPut = 10,
  /// Compensation record: abort removed object `oid` (undoing a create).
  /// Redo-only.
  kClrDelete = 11,
  /// Commutative counter increment (§5 semantic operations): `after`
  /// holds the signed 64-bit delta. Applied conditionally on the
  /// counter's stored applied-lsn, so replay is idempotent despite
  /// being delta-based. A kIncrement with `undo_of` set is the
  /// compensation of an earlier increment (redo-only).
  kIncrement = 12,
};

/// Little-endian i64 payload helpers (kIncrement deltas).
std::vector<uint8_t> EncodeI64(int64_t v);
Result<int64_t> DecodeI64(const std::vector<uint8_t>& bytes);

/// One log record. `lsn` is assigned by LogManager::Append; lsns start at
/// 1 and are dense.
struct LogRecord {
  Lsn lsn = kNullLsn;
  LogRecordType type = LogRecordType::kBegin;
  Tid tid = kNullTid;
  Tid other_tid = kNullTid;  // delegate target
  ObjectId oid = kNullObjectId;
  /// For kClr*: the lsn of the update this record compensates.
  Lsn undo_of = kNullLsn;
  std::vector<uint8_t> before;
  std::vector<uint8_t> after;
  std::vector<ObjectId> oid_set;  // kDelegateSet only

  /// Wire encoding: length-prefixed, checksummed frame.
  void EncodeTo(std::vector<uint8_t>* out) const;

  /// Decodes one record starting at `data + *offset`; advances *offset.
  /// Returns NotFound on a clean end of log, Corruption on a torn or
  /// damaged frame.
  static Result<LogRecord> DecodeFrom(const std::vector<uint8_t>& data,
                                      size_t* offset);
};

/// Append-only log. Thread-safe. Records become *durable* only when
/// flushed; SimulateCrash() discards the non-durable tail, which is how
/// recovery tests model power loss.
///
/// Optionally file-backed: AttachFile() loads the records persisted by
/// a previous process and makes every subsequent Flush() append the
/// newly durable records to the file and fsync it.
class LogManager {
 public:
  LogManager() = default;
  ~LogManager();

  /// Binds the log to `path`: existing records are loaded (all durable),
  /// future flushes append. Must be called before any Append. A torn
  /// tail from a mid-write crash is truncated, not an error.
  Status AttachFile(const std::string& path);

  /// Appends `rec`, assigning and returning its lsn.
  Lsn Append(LogRecord rec);

  /// Makes all records with lsn <= `upto` durable (everything, if
  /// kNullLsn).
  Status Flush(Lsn upto = kNullLsn);

  Lsn last_lsn() const;
  Lsn durable_lsn() const;

  /// Lsn of the most recent durable checkpoint record, or kNullLsn.
  Lsn last_checkpoint_lsn() const;

  /// Drops every record that was never flushed.
  void SimulateCrash();

  /// Copy of record `lsn` (1-based). Must exist.
  LogRecord At(Lsn lsn) const;

  /// Copies of all records, durable and not — the runtime view.
  std::vector<LogRecord> ReadAll() const;

  /// Copies of durable records only — the recovery view.
  std::vector<LogRecord> ReadDurable() const;

  /// Serializes durable records to bytes (for file shipping) and back.
  std::vector<uint8_t> SerializeDurable() const;
  static Result<std::vector<LogRecord>> Deserialize(
      const std::vector<uint8_t>& bytes);

  /// Total appended records.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<LogRecord> records_;
  Lsn durable_lsn_ = kNullLsn;
  Lsn last_checkpoint_ = kNullLsn;
  /// File descriptor of the attached log file, or -1.
  int fd_ = -1;
};

}  // namespace asset

#endif  // ASSET_STORAGE_WAL_H_
