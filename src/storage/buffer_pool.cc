#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace asset {

// ---------------------------------------------------------------------------
// PageHandle

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    page_id_ = other.page_id_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    other.page_id_ = kInvalidPageId;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  if (pool_ != nullptr) {
    // Sample the log position before taking the pool lock (lock order:
    // callers never hold the log mutex here). The store appends the
    // operation's log record before mutating the frame, so last_lsn()
    // at MarkDirty time upper-bounds every update this frame carries.
    Lsn lsn = pool_->wal_ != nullptr ? pool_->wal_->last_lsn() : kNullLsn;
    // Lower bound for the recovery watermark: the dirtying operation
    // holds an ApplyGuard registered before its record was appended, so
    // the oldest in-flight apply bound is <= this operation's lsn.
    // kNullLsn (no guard in flight — e.g. recovery redo) means unknown.
    Lsn hint = pool_->wal_ != nullptr ? pool_->wal_->OldestApplying()
                                      : kNullLsn;
    std::lock_guard<std::mutex> g(pool_->mu_);
    auto it = pool_->page_table_.find(page_id_);
    if (it != pool_->page_table_.end()) {
      BufferPool::Frame& f = pool_->frames_[it->second];
      if (!f.dirty) f.rec_lsn = hint;
      f.dirty = true;
      f.page_lsn = std::max(f.page_lsn, lsn);
    }
  }
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(page_id_, /*dirty=*/false);
    pool_ = nullptr;
    frame_ = nullptr;
    page_id_ = kInvalidPageId;
  }
}

// ---------------------------------------------------------------------------
// BufferPool

BufferPool::BufferPool(DiskManager* disk, size_t capacity, LogManager* wal)
    : disk_(disk), wal_(wal) {
  frames_.resize(capacity);
  free_frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_[i].data = std::make_unique<uint8_t[]>(kPageSize);
    free_frames_.push_back(capacity - 1 - i);
  }
}

Result<size_t> BufferPool::GrabFrameLocked() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  size_t idx = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[idx];
  f.in_lru = false;
  assert(f.pin_count == 0);
  if (f.dirty) {
    // Write-ahead rule: no dirty page reaches the device before the log
    // records covering it — up to page_lsn, not the whole tail.
    Status ws = ForceWalLocked(f.page_lsn);
    if (!ws.ok()) {
      f.lru_pos = lru_.insert(lru_.begin(), idx);
      f.in_lru = true;
      return ws;
    }
    Page(f.data.get()).UpdateChecksum();
    Status s = disk_->WritePage(f.page_id, f.data.get());
    if (!s.ok()) {
      // Put the frame back; the page must not be silently lost.
      f.lru_pos = lru_.insert(lru_.begin(), idx);
      f.in_lru = true;
      return s;
    }
    stats_.dirty_writebacks++;
  }
  page_table_.erase(f.page_id);
  f.page_id = kInvalidPageId;
  f.dirty = false;
  f.page_lsn = kNullLsn;
  f.rec_lsn = kNullLsn;
  stats_.evictions++;
  return idx;
}

Status BufferPool::ForceWalLocked(Lsn page_lsn) {
  if (wal_ == nullptr) return Status::OK();
  // kNullLsn means "watermark unknown": force everything (conservative).
  return wal_->Flush(page_lsn);
}

Result<PageHandle> BufferPool::FetchPage(PageId page_id, bool validate) {
  std::unique_lock<std::mutex> g(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame& f = frames_[it->second];
    if (f.pin_count == 0 && f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.pin_count++;
    stats_.hits++;
    return PageHandle(this, page_id, f.data.get());
  }
  stats_.misses++;
  auto frame_idx = GrabFrameLocked();
  if (!frame_idx.ok()) return frame_idx.status();
  Frame& f = frames_[*frame_idx];
  // Read outside the lock would allow higher concurrency; we keep the
  // lock for simplicity — the disk managers here are memory-speed.
  Status s = disk_->ReadPage(page_id, f.data.get());
  if (!s.ok()) {
    free_frames_.push_back(*frame_idx);
    return s;
  }
  if (validate) {
    Status valid = Page(f.data.get()).Validate();
    if (!valid.ok()) {
      free_frames_.push_back(*frame_idx);
      return valid;
    }
  }
  f.page_id = page_id;
  f.pin_count = 1;
  f.dirty = false;
  f.page_lsn = kNullLsn;
  f.rec_lsn = kNullLsn;
  page_table_[page_id] = *frame_idx;
  return PageHandle(this, page_id, f.data.get());
}

Result<PageHandle> BufferPool::NewPage() {
  std::unique_lock<std::mutex> g(mu_);
  auto page_id = disk_->AllocatePage();
  if (!page_id.ok()) return page_id.status();
  auto frame_idx = GrabFrameLocked();
  if (!frame_idx.ok()) return frame_idx.status();
  Frame& f = frames_[*frame_idx];
  Page p(f.data.get());
  p.Init(*page_id);
  f.page_id = *page_id;
  f.pin_count = 1;
  f.dirty = true;
  f.page_lsn = wal_ != nullptr ? wal_->last_lsn() : kNullLsn;
  f.rec_lsn = wal_ != nullptr ? wal_->OldestApplying() : kNullLsn;
  page_table_[*page_id] = *frame_idx;
  return PageHandle(this, *page_id, f.data.get());
}

void BufferPool::Unpin(PageId page_id, bool dirty) {
  Lsn lsn = (dirty && wal_ != nullptr) ? wal_->last_lsn() : kNullLsn;
  Lsn hint = (dirty && wal_ != nullptr) ? wal_->OldestApplying() : kNullLsn;
  std::lock_guard<std::mutex> g(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return;
  Frame& f = frames_[it->second];
  assert(f.pin_count > 0);
  if (dirty) {
    if (!f.dirty) f.rec_lsn = hint;
    f.dirty = true;
    f.page_lsn = std::max(f.page_lsn, lsn);
  }
  f.pin_count--;
  if (f.pin_count == 0) {
    f.lru_pos = lru_.insert(lru_.end(), it->second);
    f.in_lru = true;
  }
}

Status BufferPool::FlushPage(PageId page_id) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::OK();
  Frame& f = frames_[it->second];
  if (!f.dirty) return Status::OK();
  ASSET_RETURN_NOT_OK(ForceWalLocked(f.page_lsn));
  Page(f.data.get()).UpdateChecksum();
  ASSET_RETURN_NOT_OK(disk_->WritePage(page_id, f.data.get()));
  f.dirty = false;
  f.page_lsn = kNullLsn;
  f.rec_lsn = kNullLsn;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> g(mu_);
  // One WAL force covering every dirty frame (the max watermark), then
  // the writebacks. Any frame with an unknown watermark forces the
  // whole log.
  bool any_dirty = false;
  bool unknown = false;
  Lsn max_lsn = kNullLsn;
  for (const Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      any_dirty = true;
      if (f.page_lsn == kNullLsn) unknown = true;
      max_lsn = std::max(max_lsn, f.page_lsn);
    }
  }
  if (any_dirty) {
    ASSET_RETURN_NOT_OK(ForceWalLocked(unknown ? kNullLsn : max_lsn));
  }
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      Page(f.data.get()).UpdateChecksum();
      ASSET_RETURN_NOT_OK(disk_->WritePage(f.page_id, f.data.get()));
      f.dirty = false;
      f.page_lsn = kNullLsn;
      f.rec_lsn = kNullLsn;
    }
  }
  return disk_->Sync();
}

Status BufferPool::FlushUnpinned() {
  // Phase 1: collect the dirty set and its covering watermark.
  std::vector<PageId> targets;
  bool unknown = false;
  Lsn max_lsn = kNullLsn;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (const Frame& f : frames_) {
      if (f.page_id != kInvalidPageId && f.dirty) {
        targets.push_back(f.page_id);
        if (f.page_lsn == kNullLsn) unknown = true;
        max_lsn = std::max(max_lsn, f.page_lsn);
      }
    }
  }
  if (targets.empty()) return Status::OK();
  // Phase 2: one WAL force, outside the pool lock — appenders, pinners
  // and committers keep running while the log syncs.
  Lsn forced = kNullLsn;
  if (wal_ != nullptr) {
    ASSET_RETURN_NOT_OK(wal_->Flush(unknown ? kNullLsn : max_lsn));
    forced = wal_->durable_lsn();
  }
  // Phase 3: write back each target under a short lock hold. A page
  // that is pinned, or was re-dirtied past the forced watermark, is
  // skipped — it stays dirty and lands in the dirty-page table instead.
  // Holding mu_ across the write is what makes the copy safe: mutators
  // need a pin, pins need mu_, and pin_count is 0.
  for (PageId pid : targets) {
    std::lock_guard<std::mutex> g(mu_);
    auto it = page_table_.find(pid);
    if (it == page_table_.end()) continue;  // evicted meanwhile
    Frame& f = frames_[it->second];
    if (!f.dirty || f.pin_count > 0) continue;
    if (wal_ != nullptr && f.page_lsn > forced) continue;
    Page(f.data.get()).UpdateChecksum();
    ASSET_RETURN_NOT_OK(disk_->WritePage(f.page_id, f.data.get()));
    f.dirty = false;
    f.page_lsn = kNullLsn;
    f.rec_lsn = kNullLsn;
    stats_.dirty_writebacks++;
  }
  return disk_->Sync();
}

std::vector<std::pair<PageId, Lsn>> BufferPool::DirtyPageTable() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::pair<PageId, Lsn>> out;
  for (const Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      out.emplace_back(f.page_id, f.rec_lsn);
    }
  }
  return out;
}

Lsn BufferPool::MinRecoveryLsn() const {
  std::lock_guard<std::mutex> g(mu_);
  Lsn min_lsn = kNullLsn;
  for (const Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      Lsn r = (f.rec_lsn == kNullLsn) ? 1 : f.rec_lsn;
      min_lsn = (min_lsn == kNullLsn) ? r : std::min(min_lsn, r);
    }
  }
  return min_lsn;
}

void BufferPool::DropAllUnflushed() {
  std::lock_guard<std::mutex> g(mu_);
  lru_.clear();
  page_table_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    assert(f.pin_count == 0 && "DropAllUnflushed with outstanding pins");
    f.page_id = kInvalidPageId;
    f.dirty = false;
    f.page_lsn = kNullLsn;
    f.rec_lsn = kNullLsn;
    f.in_lru = false;
    free_frames_.push_back(frames_.size() - 1 - i);
  }
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

}  // namespace asset
