#include "storage/object_store.h"

#include <cstring>

namespace asset {

namespace {

constexpr size_t kRecordHeader = sizeof(ObjectId);

ObjectId RecordOid(std::span<const uint8_t> record) {
  ObjectId oid;
  std::memcpy(&oid, record.data(), sizeof(oid));
  return oid;
}

}  // namespace

std::vector<uint8_t> ObjectStore::MakeRecord(ObjectId oid,
                                             std::span<const uint8_t> data) {
  std::vector<uint8_t> rec(kRecordHeader + data.size());
  std::memcpy(rec.data(), &oid, sizeof(oid));
  std::memcpy(rec.data() + kRecordHeader, data.data(), data.size());
  return rec;
}

Status ObjectStore::Open() {
  std::unique_lock<std::shared_mutex> g(mu_);
  directory_.clear();
  next_oid_ = kFirstUserObjectId;
  last_insert_page_ = kInvalidPageId;
  // The store owns the device: every page is one of ours.
  // NumPages() can race with concurrent allocation in principle, but Open
  // runs before the store is shared.
  PageId n = 0;
  {
    // Probe device size via the pool's disk; fetching a page past the end
    // returns NotFound, so scan until that happens using sequential ids.
    for (PageId pid = 0;; ++pid) {
      auto h = pool_->FetchPage(pid, /*validate=*/false);
      if (!h.ok()) {
        if (h.status().IsNotFound()) break;
        return h.status();
      }
      n = pid + 1;
      Page p = h->page();
      if (!p.Validate().ok()) {
        // A page allocated but never flushed before a crash reads back as
        // all zeros; its contents were never durable, so reformat it as
        // empty. Anything else is genuine corruption.
        const uint8_t* raw = p.raw();
        bool all_zero = true;
        for (size_t i = 0; i < kPageSize; ++i) {
          if (raw[i] != 0) {
            all_zero = false;
            break;
          }
        }
        if (!all_zero) {
          return Status::Corruption("page " + std::to_string(pid) +
                                    " fails validation");
        }
        p.Init(pid);
        h->MarkDirty();
        continue;
      }
      for (SlotId s = 0; s < p.SlotCount(); ++s) {
        auto rec = p.Read(s);
        if (!rec.ok()) continue;  // tombstone
        if (rec->size() < kRecordHeader) {
          return Status::Corruption("object record shorter than header");
        }
        ObjectId oid = RecordOid(*rec);
        directory_[oid] = Located{RecordId{pid, s}};
        if (oid >= next_oid_) next_oid_ = oid + 1;
      }
    }
  }
  (void)n;
  return Status::OK();
}

Result<PageHandle> ObjectStore::FindPageWithRoomLocked(size_t bytes) {
  if (last_insert_page_ != kInvalidPageId) {
    auto h = pool_->FetchPage(last_insert_page_);
    if (h.ok() && h->page().HasRoomFor(bytes)) return h;
  }
  auto fresh = pool_->NewPage();
  if (!fresh.ok()) return fresh.status();
  last_insert_page_ = fresh->page_id();
  return fresh;
}

Status ObjectStore::CreateLocked(ObjectId oid,
                                 std::span<const uint8_t> data) {
  std::vector<uint8_t> rec = MakeRecord(oid, data);
  if (rec.size() > Page::MaxRecordSize()) {
    return Status::InvalidArgument("object larger than page capacity");
  }
  auto h = FindPageWithRoomLocked(rec.size());
  if (!h.ok()) return h.status();
  Page p = h->page();
  auto slot = p.Insert(rec);
  if (!slot.ok()) return slot.status();
  h->MarkDirty();
  directory_[oid] = Located{RecordId{h->page_id(), *slot}};
  if (oid >= next_oid_) next_oid_ = oid + 1;
  return Status::OK();
}

Result<ObjectId> ObjectStore::Create(std::span<const uint8_t> data) {
  std::unique_lock<std::shared_mutex> g(mu_);
  ObjectId oid = next_oid_++;
  Status s = CreateLocked(oid, data);
  if (!s.ok()) return s;
  return oid;
}

ObjectId ObjectStore::AllocateId() {
  std::unique_lock<std::shared_mutex> g(mu_);
  return next_oid_++;
}

size_t ObjectStore::MaxObjectSize() {
  return Page::MaxRecordSize() - kRecordHeader;
}

Status ObjectStore::CreateWithId(ObjectId oid,
                                 std::span<const uint8_t> data) {
  if (oid == kNullObjectId) {
    return Status::InvalidArgument("null object id");
  }
  std::unique_lock<std::shared_mutex> g(mu_);
  if (directory_.count(oid) != 0) {
    return Status::IllegalState("object " + std::to_string(oid) +
                                " already exists");
  }
  return CreateLocked(oid, data);
}

Result<std::vector<uint8_t>> ObjectStore::Read(ObjectId oid) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  auto it = directory_.find(oid);
  if (it == directory_.end()) {
    return Status::NotFound("object " + std::to_string(oid));
  }
  auto h = pool_->FetchPage(it->second.rid.page_id);
  if (!h.ok()) return h.status();
  auto rec = h->page().Read(it->second.rid.slot_id);
  if (!rec.ok()) return rec.status();
  return std::vector<uint8_t>(rec->begin() + kRecordHeader, rec->end());
}

Status ObjectStore::WriteLocked(ObjectId oid,
                                std::span<const uint8_t> data) {
  auto it = directory_.find(oid);
  if (it == directory_.end()) {
    return Status::NotFound("object " + std::to_string(oid));
  }
  std::vector<uint8_t> rec = MakeRecord(oid, data);
  if (rec.size() > Page::MaxRecordSize()) {
    return Status::InvalidArgument("object larger than page capacity");
  }
  auto h = pool_->FetchPage(it->second.rid.page_id);
  if (!h.ok()) return h.status();
  Status s = h->page().Update(it->second.rid.slot_id, rec);
  if (s.ok()) {
    h->MarkDirty();
    return Status::OK();
  }
  if (s.code() != StatusCode::kResourceExhausted) return s;
  // The grown object no longer fits on its page: move it.
  ASSET_RETURN_NOT_OK(h->page().Delete(it->second.rid.slot_id));
  h->MarkDirty();
  h->Release();
  directory_.erase(it);
  return CreateLocked(oid, data);
}

Status ObjectStore::Write(ObjectId oid, std::span<const uint8_t> data) {
  std::unique_lock<std::shared_mutex> g(mu_);
  return WriteLocked(oid, data);
}

Status ObjectStore::DeleteLocked(ObjectId oid) {
  auto it = directory_.find(oid);
  if (it == directory_.end()) {
    return Status::NotFound("object " + std::to_string(oid));
  }
  auto h = pool_->FetchPage(it->second.rid.page_id);
  if (!h.ok()) return h.status();
  ASSET_RETURN_NOT_OK(h->page().Delete(it->second.rid.slot_id));
  h->MarkDirty();
  directory_.erase(it);
  return Status::OK();
}

Status ObjectStore::Delete(ObjectId oid) {
  std::unique_lock<std::shared_mutex> g(mu_);
  return DeleteLocked(oid);
}

bool ObjectStore::Exists(ObjectId oid) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  return directory_.count(oid) != 0;
}

size_t ObjectStore::NumObjects() const {
  std::shared_lock<std::shared_mutex> g(mu_);
  return directory_.size();
}

std::vector<ObjectId> ObjectStore::ListObjects() const {
  std::shared_lock<std::shared_mutex> g(mu_);
  std::vector<ObjectId> out;
  out.reserve(directory_.size());
  for (const auto& [oid, _] : directory_) out.push_back(oid);
  return out;
}

Status ObjectStore::ApplyPut(ObjectId oid, std::span<const uint8_t> data) {
  std::unique_lock<std::shared_mutex> g(mu_);
  if (directory_.count(oid) != 0) {
    return WriteLocked(oid, data);
  }
  return CreateLocked(oid, data);
}

Status ObjectStore::ApplyDelete(ObjectId oid) {
  std::unique_lock<std::shared_mutex> g(mu_);
  if (directory_.count(oid) == 0) return Status::OK();
  return DeleteLocked(oid);
}

// ---------------------------------------------------------------------------
// Counters

namespace {

constexpr size_t kCounterBytes = sizeof(Lsn) + sizeof(int64_t);

struct CounterImage {
  Lsn applied_lsn;
  int64_t value;
};

Result<CounterImage> DecodeCounter(std::span<const uint8_t> bytes) {
  if (bytes.size() != kCounterBytes) {
    return Status::InvalidArgument("object is not counter-shaped");
  }
  CounterImage img;
  std::memcpy(&img.applied_lsn, bytes.data(), sizeof(Lsn));
  std::memcpy(&img.value, bytes.data() + sizeof(Lsn), sizeof(int64_t));
  return img;
}

}  // namespace

std::vector<uint8_t> ObjectStore::EncodeCounter(Lsn applied_lsn,
                                                int64_t value) {
  std::vector<uint8_t> out(kCounterBytes);
  std::memcpy(out.data(), &applied_lsn, sizeof(Lsn));
  std::memcpy(out.data() + sizeof(Lsn), &value, sizeof(int64_t));
  return out;
}

Result<int64_t> ObjectStore::ReadCounter(ObjectId oid) const {
  auto bytes = Read(oid);
  if (!bytes.ok()) return bytes.status();
  auto img = DecodeCounter(*bytes);
  if (!img.ok()) return img.status();
  return img->value;
}

Result<int64_t> ObjectStore::ApplyDelta(ObjectId oid, Lsn lsn,
                                        int64_t delta) {
  std::unique_lock<std::shared_mutex> g(mu_);
  auto it = directory_.find(oid);
  if (it == directory_.end()) {
    return Status::NotFound("counter " + std::to_string(oid));
  }
  auto h = pool_->FetchPage(it->second.rid.page_id);
  if (!h.ok()) return h.status();
  auto rec = h->page().Read(it->second.rid.slot_id);
  if (!rec.ok()) return rec.status();
  auto img = DecodeCounter(rec->subspan(sizeof(ObjectId)));
  if (!img.ok()) return img.status();
  if (lsn > img->applied_lsn) {
    img->value += delta;
    img->applied_lsn = lsn;
    std::vector<uint8_t> updated =
        MakeRecord(oid, EncodeCounter(img->applied_lsn, img->value));
    ASSET_RETURN_NOT_OK(h->page().Update(it->second.rid.slot_id, updated));
    h->MarkDirty();
  }
  return img->value;
}

}  // namespace asset
