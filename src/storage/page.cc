#include "storage/page.h"

#include <algorithm>

namespace asset {

namespace {

/// FNV-1a over a byte range; cheap and adequate for torn-write detection.
uint32_t Fnv1a(const uint8_t* data, size_t len) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

}  // namespace

void Page::Init(PageId page_id) {
  std::memset(data_, 0, kPageSize);
  Header& h = header();
  h.magic = kMagic;
  h.page_id = page_id;
  h.lsn = kNullLsn;
  h.slot_count = 0;
  h.free_lower = sizeof(Header);
  h.free_upper = kPageSize;
  h.garbage_bytes = 0;
  UpdateChecksum();
}

uint32_t Page::ComputeChecksum() const {
  // Checksum everything except the checksum field itself (last header
  // word before the slot directory).
  const size_t off = offsetof(Header, checksum);
  uint32_t h = Fnv1a(data_, off);
  h ^= Fnv1a(data_ + off + sizeof(uint32_t),
             kPageSize - off - sizeof(uint32_t));
  return h;
}

void Page::UpdateChecksum() { header().checksum = ComputeChecksum(); }

Status Page::Validate() const {
  const Header& h = header();
  if (h.magic != kMagic) {
    return Status::Corruption("page magic mismatch");
  }
  if (h.free_lower > h.free_upper || h.free_upper > kPageSize ||
      h.free_lower != sizeof(Header) + h.slot_count * sizeof(Slot)) {
    return Status::Corruption("page header geometry invalid");
  }
  if (h.checksum != ComputeChecksum()) {
    return Status::Corruption("page checksum mismatch");
  }
  return Status::OK();
}

bool Page::HasRoomFor(size_t size) const {
  const Header& h = header();
  const size_t contiguous = h.free_upper - h.free_lower;
  return contiguous >= size + sizeof(Slot) ||
         contiguous + h.garbage_bytes >= size + sizeof(Slot);
}

Result<SlotId> Page::Insert(std::span<const uint8_t> record) {
  if (record.size() > MaxRecordSize()) {
    return Status::InvalidArgument("record larger than page capacity");
  }
  Header& h = header();
  size_t need = record.size() + sizeof(Slot);
  if (static_cast<size_t>(h.free_upper - h.free_lower) < need) {
    if (static_cast<size_t>(h.free_upper - h.free_lower) + h.garbage_bytes <
        need) {
      return Status::ResourceExhausted("page full");
    }
    Compact();
    if (static_cast<size_t>(h.free_upper - h.free_lower) < need) {
      return Status::ResourceExhausted("page full after compaction");
    }
  }
  SlotId slot = h.slot_count;
  h.slot_count++;
  h.free_lower += sizeof(Slot);
  h.free_upper -= static_cast<uint16_t>(record.size());
  slots()[slot].offset = h.free_upper;
  slots()[slot].length = static_cast<uint16_t>(record.size());
  std::memcpy(data_ + h.free_upper, record.data(), record.size());
  return slot;
}

Result<std::span<const uint8_t>> Page::Read(SlotId slot) const {
  if (slot >= header().slot_count) {
    return Status::NotFound("slot out of range");
  }
  const Slot& s = slots()[slot];
  if (s.offset == 0) {
    return Status::NotFound("slot is tombstoned");
  }
  return std::span<const uint8_t>(data_ + s.offset, s.length);
}

bool Page::IsLive(SlotId slot) const {
  return slot < header().slot_count && slots()[slot].offset != 0;
}

Status Page::Update(SlotId slot, std::span<const uint8_t> record) {
  if (slot >= header().slot_count || slots()[slot].offset == 0) {
    return Status::NotFound("no live record at slot");
  }
  if (record.size() > MaxRecordSize()) {
    return Status::InvalidArgument("record larger than page capacity");
  }
  Header& h = header();
  Slot& s = slots()[slot];
  if (record.size() <= s.length) {
    // Shrink or same-size in place; the tail gap becomes garbage.
    h.garbage_bytes += static_cast<uint16_t>(s.length - record.size());
    s.length = static_cast<uint16_t>(record.size());
    std::memcpy(data_ + s.offset, record.data(), record.size());
    return Status::OK();
  }
  // Relocate: tombstone the old bytes, place the new copy in free space
  // (compacting if needed).
  const uint16_t old_len = s.length;
  size_t contiguous = h.free_upper - h.free_lower;
  if (contiguous < record.size()) {
    if (contiguous + h.garbage_bytes + old_len < record.size()) {
      return Status::ResourceExhausted("page cannot fit grown record");
    }
    h.garbage_bytes += old_len;
    s.offset = 0;  // let Compact reclaim the old copy
    s.length = 0;
    Compact();
    if (static_cast<size_t>(h.free_upper - h.free_lower) < record.size()) {
      return Status::ResourceExhausted("page cannot fit grown record");
    }
  } else {
    h.garbage_bytes += old_len;
  }
  h.free_upper -= static_cast<uint16_t>(record.size());
  s.offset = h.free_upper;
  s.length = static_cast<uint16_t>(record.size());
  std::memcpy(data_ + s.offset, record.data(), record.size());
  return Status::OK();
}

Status Page::Delete(SlotId slot) {
  if (slot >= header().slot_count || slots()[slot].offset == 0) {
    return Status::NotFound("no live record at slot");
  }
  Header& h = header();
  Slot& s = slots()[slot];
  h.garbage_bytes += s.length;
  s.offset = 0;
  s.length = 0;
  return Status::OK();
}

void Page::Compact() {
  Header& h = header();
  // Gather live records, rewrite the heap from the top down.
  struct Live {
    SlotId slot;
    std::vector<uint8_t> bytes;
  };
  std::vector<Live> lives;
  lives.reserve(h.slot_count);
  for (SlotId i = 0; i < h.slot_count; ++i) {
    const Slot& s = slots()[i];
    if (s.offset != 0) {
      lives.push_back(
          {i, std::vector<uint8_t>(data_ + s.offset,
                                   data_ + s.offset + s.length)});
    }
  }
  uint16_t upper = kPageSize;
  for (const Live& l : lives) {
    upper -= static_cast<uint16_t>(l.bytes.size());
    std::memcpy(data_ + upper, l.bytes.data(), l.bytes.size());
    slots()[l.slot].offset = upper;
    slots()[l.slot].length = static_cast<uint16_t>(l.bytes.size());
  }
  h.free_upper = upper;
  h.garbage_bytes = 0;
}

}  // namespace asset
