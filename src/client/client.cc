#include "client/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "api/wire.h"

namespace asset::client {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Client::Client(int fd, Options options) : fd_(fd), options_(options) {}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                Options options) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("client: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("client: bad host " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno("client: connect " + host + ":" + std::to_string(port));
    close(fd);
    return s;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto client = std::unique_ptr<Client>(new Client(fd, options));
  if (!options.skip_handshake) {
    ASSET_ASSIGN_OR_RETURN(api::Reply hello,
                           client->Call(api::Command::Hello()));
    if (!hello.ok()) return hello.ToStatus();
    if (hello.i64 != static_cast<int64_t>(api::kProtocolVersion)) {
      return Status::IllegalState(
          "client: server speaks protocol version " +
          std::to_string(hello.i64) + ", this client speaks " +
          std::to_string(api::kProtocolVersion));
    }
  }
  return client;
}

void Client::Send(const api::Command& cmd) {
  std::vector<uint8_t> payload;
  api::EncodeCommand(cmd, &payload);
  api::AppendFrame(payload, &send_buf_);
  ++staged_;
}

Status Client::Flush() {
  size_t off = 0;
  while (off < send_buf_.size()) {
    ssize_t sent = send(fd_, send_buf_.data() + off, send_buf_.size() - off,
                        MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Errno("client: send");
    }
    off += static_cast<size_t>(sent);
  }
  send_buf_.clear();
  staged_ = 0;
  return Status::OK();
}

Status Client::FillTo(size_t need) {
  // Compact the consumed prefix before growing the buffer.
  if (recv_off_ > 0 && recv_off_ == recv_buf_.size()) {
    recv_buf_.clear();
    recv_off_ = 0;
  }
  while (recv_buf_.size() - recv_off_ < need) {
    size_t base = recv_buf_.size();
    size_t chunk = 64 * 1024;
    recv_buf_.resize(base + chunk);
    ssize_t got = recv(fd_, recv_buf_.data() + base, chunk, 0);
    if (got < 0) {
      recv_buf_.resize(base);
      if (errno == EINTR) continue;
      return Errno("client: recv");
    }
    if (got == 0) {
      recv_buf_.resize(base);
      return Status::IOError("client: connection closed by server");
    }
    recv_buf_.resize(base + static_cast<size_t>(got));
  }
  return Status::OK();
}

Result<api::Reply> Client::Receive() {
  ASSET_RETURN_NOT_OK(FillTo(api::kFrameHeaderBytes));
  std::span<const uint8_t> buffered(recv_buf_.data() + recv_off_,
                                    recv_buf_.size() - recv_off_);
  std::span<const uint8_t> payload;
  api::FrameSplit split =
      api::TrySplitFrame(buffered, options_.max_frame_bytes, &payload);
  if (split == api::FrameSplit::kNeedMore) {
    api::WireReader header(buffered.subspan(0, api::kFrameHeaderBytes));
    uint32_t len = 0;
    header.GetU32(&len);
    ASSET_RETURN_NOT_OK(FillTo(api::kFrameHeaderBytes + len));
    buffered = std::span<const uint8_t>(recv_buf_.data() + recv_off_,
                                        recv_buf_.size() - recv_off_);
    split = api::TrySplitFrame(buffered, options_.max_frame_bytes, &payload);
  }
  if (split != api::FrameSplit::kFrame) {
    return Status::InvalidArgument("client: oversized or zero-length frame");
  }
  auto reply = api::DecodeReply(payload);
  recv_off_ += api::kFrameHeaderBytes + payload.size();
  return reply;
}

Result<api::Reply> Client::Call(const api::Command& cmd) {
  Send(cmd);
  ASSET_RETURN_NOT_OK(Flush());
  return Receive();
}

Result<Tid> Client::Begin() {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Begin()));
  if (!r.ok()) return r.ToStatus();
  return static_cast<Tid>(r.u64);
}

Status Client::Commit(Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Commit(t)));
  return r.ToStatus();
}

Status Client::Abort(Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Abort(t)));
  return r.ToStatus();
}

Result<ObjectId> Client::Create(const std::vector<uint8_t>& bytes, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Create(bytes, t)));
  if (!r.ok()) return r.ToStatus();
  return static_cast<ObjectId>(r.u64);
}

Result<std::vector<uint8_t>> Client::Get(ObjectId oid, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Get(oid, t)));
  if (!r.ok()) return r.ToStatus();
  return std::move(r.bytes);
}

Status Client::Put(ObjectId oid, const std::vector<uint8_t>& bytes, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Put(oid, bytes, t)));
  return r.ToStatus();
}

Status Client::Delete(ObjectId oid, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Delete(oid, t)));
  return r.ToStatus();
}

Result<ObjectId> Client::CreateCounter(int64_t initial, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r,
                         Call(api::Command::CreateCounter(initial, t)));
  if (!r.ok()) return r.ToStatus();
  return static_cast<ObjectId>(r.u64);
}

Status Client::Add(ObjectId oid, int64_t delta, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Add(oid, delta, t)));
  return r.ToStatus();
}

Result<int64_t> Client::GetCounter(ObjectId oid, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::GetCounter(oid, t)));
  if (!r.ok()) return r.ToStatus();
  return r.i64;
}

Status Client::Ping() {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Ping()));
  return r.ToStatus();
}

Status Client::Checkpoint() {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Checkpoint()));
  return r.ToStatus();
}

Result<std::string> Client::Metrics() {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Metrics()));
  if (!r.ok()) return r.ToStatus();
  return std::move(r.text);
}

}  // namespace asset::client
