#include "client/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "api/wire.h"
#include "common/socket_io.h"

namespace asset::client {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Status Client::Options::Validate() const {
  if (max_frame_bytes < 16) {
    return Status::InvalidArgument(
        "client: max_frame_bytes too small to hold any reply");
  }
  if (connect_timeout.count() < 0 || io_timeout.count() < 0) {
    return Status::InvalidArgument("client: negative timeout");
  }
  if (max_retries < 0) {
    return Status::InvalidArgument("client: negative max_retries");
  }
  if (backoff_base.count() <= 0) {
    return Status::InvalidArgument("client: backoff_base must be > 0");
  }
  if (backoff_max < backoff_base) {
    return Status::InvalidArgument(
        "client: backoff_max below backoff_base");
  }
  return Status::OK();
}

Client::Client(const std::string& host, uint16_t port, Options options)
    : host_(host),
      port_(port),
      options_(options),
      jitter_rng_(static_cast<unsigned>(
          std::chrono::steady_clock::now().time_since_epoch().count() ^
          reinterpret_cast<uintptr_t>(this))) {}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

void Client::DropConnection() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  send_buf_.clear();
  staged_ = 0;
  recv_buf_.clear();
  recv_off_ = 0;
  inflight_.clear();
}

uint64_t Client::NewTraceId() {
  // minstd_rand yields 31 bits per draw; two draws plus the counter
  // fill 64 bits without ever minting zero (the "untraced" value).
  uint64_t id = (static_cast<uint64_t>(jitter_rng_()) << 33) ^
                (static_cast<uint64_t>(jitter_rng_()) << 11) ^
                ++trace_counter_;
  return id == 0 ? 1 : id;
}

Status Client::WaitFor(short events, const char* what) {
  pollfd pfd{fd_, events, 0};
  int timeout = options_.io_timeout.count() > 0
                    ? static_cast<int>(options_.io_timeout.count())
                    : -1;
  for (;;) {
    int n = SockPoll(&pfd, 1, timeout);
    if (n > 0) return Status::OK();
    if (n == 0) {
      ++stats_.timeouts;
      return Status::TimedOut(std::string("client: ") + what +
                              " timed out after " +
                              std::to_string(options_.io_timeout.count()) +
                              " ms");
    }
    if (errno == EINTR) continue;
    return Errno(std::string("client: poll for ") + what);
  }
}

Status Client::DialOnce() {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) return Errno("client: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("client: bad host " + host_);
  }
  const std::string where = host_ + ":" + std::to_string(port_);
  if (SockConnect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      Status s = Errno("client: connect " + where);
      close(fd);
      return s;
    }
    // Nonblocking connect in flight: bounded wait for writability,
    // then read the final verdict out of SO_ERROR.
    pollfd pfd{fd, POLLOUT, 0};
    int timeout = options_.connect_timeout.count() > 0
                      ? static_cast<int>(options_.connect_timeout.count())
                      : -1;
    int n;
    do {
      n = SockPoll(&pfd, 1, timeout);
    } while (n < 0 && errno == EINTR);
    if (n == 0) {
      close(fd);
      ++stats_.timeouts;
      return Status::TimedOut(
          "client: connect " + where + " timed out after " +
          std::to_string(options_.connect_timeout.count()) + " ms");
    }
    if (n < 0) {
      Status s = Errno("client: poll for connect " + where);
      close(fd);
      return s;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      if (err != 0) errno = err;
      Status s = Errno("client: connect " + where);
      close(fd);
      return s;
    }
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;

  if (!options_.skip_handshake) {
    Send(api::Command::Hello());
    Status fs = Flush();
    if (fs.ok()) {
      auto hello = Receive();
      if (!hello.ok()) fs = hello.status();
      else if (!hello->ok()) fs = hello->ToStatus();
      else if (hello->i64 < static_cast<int64_t>(api::kMinProtocolVersion) ||
               hello->i64 > static_cast<int64_t>(api::kProtocolVersion)) {
        fs = Status::IllegalState(
            "client: server speaks protocol version " +
            std::to_string(hello->i64) + ", this client speaks " +
            std::to_string(api::kMinProtocolVersion) + ".." +
            std::to_string(api::kProtocolVersion));
      } else {
        server_version_ = static_cast<uint16_t>(hello->i64);
      }
    }
    if (!fs.ok()) {
      DropConnection();
      return fs;
    }
  }
  return Status::OK();
}

Status Client::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  // A fresh dial sends nothing until it succeeds, so connect failures
  // are always safe to retry. Re-dialing after the transport died
  // counts as a reconnect even when the first attempt lands.
  const bool redial = ever_connected_;
  Status s;
  for (int attempt = 0;; ++attempt) {
    s = DialOnce();
    if (s.ok()) {
      if (redial || attempt > 0) ++stats_.reconnects;
      ever_connected_ = true;
      return s;
    }
    if (s.code() == StatusCode::kInvalidArgument ||
        attempt >= options_.max_retries) {
      return s;  // a bad host never gets better; retries exhausted
    }
    Backoff(attempt, 0);
  }
}

void Client::Backoff(int attempt, int64_t hint_ms) {
  int64_t base = options_.backoff_base.count();
  int64_t cap = options_.backoff_max.count();
  int64_t exp = base << std::min(attempt, 20);
  int64_t ceiling = std::min(exp, cap);
  // Full jitter: sleep uniformly in [0, ceiling] so a thundering herd
  // of shed clients decorrelates, but never under the server's hint.
  int64_t sleep_ms =
      static_cast<int64_t>(jitter_rng_() % static_cast<uint64_t>(ceiling + 1));
  sleep_ms = std::max(sleep_ms, hint_ms);
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                Options options) {
  ASSET_RETURN_NOT_OK(options.Validate());
  auto client =
      std::unique_ptr<Client>(new Client(host, port, options));
  ASSET_RETURN_NOT_OK(client->EnsureConnected());
  return client;
}

void Client::Send(const api::Command& cmd) {
  const bool stamp_deadline =
      cmd.deadline_ms == 0 && options_.default_deadline_ms > 0;
  // Trace stamping: a command arriving pre-stamped (Call's retry loop,
  // or an explicit WithTrace) keeps its trace id and gets a fresh span
  // per send; an unstamped command gets a whole new context when
  // tracing is on.
  uint64_t trace = cmd.trace_id;
  uint64_t span = cmd.span_id;
  if (trace == 0 && TracingOn()) trace = NewTraceId();
  if (trace != 0 && server_version_ != 0 && server_version_ < 3) {
    trace = 0;  // a v2 server rejects the trace flag; drop, don't break
    span = 0;
  }
  if (trace != 0 && span == 0) span = ++trace_counter_;
  std::vector<uint8_t> payload;
  if (stamp_deadline || trace != cmd.trace_id || span != cmd.span_id) {
    api::Command stamped = cmd;
    if (stamp_deadline) stamped.deadline_ms = options_.default_deadline_ms;
    stamped.trace_id = trace;
    stamped.span_id = span;
    api::EncodeCommand(stamped, &payload);
  } else {
    api::EncodeCommand(cmd, &payload);
  }
  if (trace != 0) last_trace_id_ = trace;
  Inflight inflight;
  inflight.trace_id = trace;
  inflight.span_id = span;
  inflight.tag = static_cast<uint8_t>(cmd.type);
  inflight.send_ns = trace != 0 ? FlightRecorder::NowNs() : 0;
  inflight_.push_back(inflight);
  api::AppendFrame(payload, &send_buf_);
  ++staged_;
}

Status Client::Flush() {
  if (fd_ < 0) {
    return Status::Unavailable("client: not connected");
  }
  size_t off = 0;
  while (off < send_buf_.size()) {
    ssize_t sent = SockSend(fd_, send_buf_.data() + off,
                            send_buf_.size() - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        Status w = WaitFor(POLLOUT, "send");
        if (!w.ok()) {
          DropConnection();
          return w;
        }
        continue;
      }
      Status s = errno == EPIPE || errno == ECONNRESET
                     ? Status::Unavailable("client: connection reset by peer")
                     : Errno("client: send");
      DropConnection();
      return s;
    }
    off += static_cast<size_t>(sent);
  }
  send_buf_.clear();
  staged_ = 0;
  return Status::OK();
}

Status Client::FillTo(size_t need) {
  if (fd_ < 0) {
    return Status::Unavailable("client: not connected");
  }
  // Compact the consumed prefix before growing the buffer.
  if (recv_off_ > 0 && recv_off_ == recv_buf_.size()) {
    recv_buf_.clear();
    recv_off_ = 0;
  }
  while (recv_buf_.size() - recv_off_ < need) {
    size_t base = recv_buf_.size();
    size_t chunk = 64 * 1024;
    recv_buf_.resize(base + chunk);
    ssize_t got = SockRecv(fd_, recv_buf_.data() + base, chunk, 0);
    if (got < 0) {
      recv_buf_.resize(base);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        Status w = WaitFor(POLLIN, "recv");
        if (!w.ok()) {
          DropConnection();
          return w;
        }
        continue;
      }
      Status s = errno == ECONNRESET
                     ? Status::Unavailable("client: connection reset by peer")
                     : Errno("client: recv");
      DropConnection();
      return s;
    }
    if (got == 0) {
      recv_buf_.resize(base);
      DropConnection();
      return Status::Unavailable("client: connection closed by server");
    }
    recv_buf_.resize(base + static_cast<size_t>(got));
  }
  return Status::OK();
}

Result<api::Reply> Client::Receive() {
  ASSET_RETURN_NOT_OK(FillTo(api::kFrameHeaderBytes));
  std::span<const uint8_t> buffered(recv_buf_.data() + recv_off_,
                                    recv_buf_.size() - recv_off_);
  std::span<const uint8_t> payload;
  api::FrameSplit split =
      api::TrySplitFrame(buffered, options_.max_frame_bytes, &payload);
  if (split == api::FrameSplit::kNeedMore) {
    api::WireReader header(buffered.subspan(0, api::kFrameHeaderBytes));
    uint32_t len = 0;
    header.GetU32(&len);
    ASSET_RETURN_NOT_OK(FillTo(api::kFrameHeaderBytes + len));
    buffered = std::span<const uint8_t>(recv_buf_.data() + recv_off_,
                                        recv_buf_.size() - recv_off_);
    split = api::TrySplitFrame(buffered, options_.max_frame_bytes, &payload);
  }
  if (split != api::FrameSplit::kFrame) {
    return Status::InvalidArgument("client: oversized or zero-length frame");
  }
  auto reply = api::DecodeReply(payload);
  recv_off_ += api::kFrameHeaderBytes + payload.size();
  if (!inflight_.empty()) {
    const Inflight sent = inflight_.front();
    inflight_.pop_front();
    if (sent.trace_id != 0 && options_.trace_recorder != nullptr) {
      const uint64_t code =
          reply.ok() ? static_cast<uint64_t>(reply->code) : 0;
      options_.trace_recorder->Emit(
          TraceEventType::kClientRpc, sent.trace_id, sent.span_id, sent.tag,
          code, FlightRecorder::NowNs() - sent.send_ns);
    }
  }
  return reply;
}

Result<api::Reply> Client::Call(const api::Command& cmd) {
  // One trace id for the whole logical call: stamped up front (once
  // connected, when tracing is on) so every retry and reconnected
  // re-send shares it, each attempt distinguished by its span id.
  api::Command attempt_cmd = cmd;
  for (int attempt = 0;; ++attempt) {
    if (fd_ < 0) {
      if (!options_.auto_reconnect) {
        return Status::Unavailable("client: not connected");
      }
      ASSET_RETURN_NOT_OK(EnsureConnected());
    }
    if (attempt_cmd.trace_id == 0 && TracingOn()) {
      attempt_cmd.trace_id = NewTraceId();
    }
    attempt_cmd.span_id = 0;  // Send mints a fresh span per attempt
    Send(attempt_cmd);
    // A transport error from here on is NOT retried: the command's
    // bytes may have reached the server and executed, and re-sending
    // would risk executing twice. Only the server saying "I shed this
    // before executing it" (kOverloaded) is safe to re-send.
    ASSET_RETURN_NOT_OK(Flush());
    ASSET_ASSIGN_OR_RETURN(api::Reply reply, Receive());
    if (reply.code != StatusCode::kOverloaded) return reply;
    ++stats_.overloaded_seen;
    if (attempt >= options_.max_retries) return reply;
    ++stats_.retries;
    Backoff(attempt, reply.kind == api::ReplyValueKind::kI64 ? reply.i64 : 0);
  }
}

Result<Tid> Client::Begin() {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Begin()));
  if (!r.ok()) return r.ToStatus();
  return static_cast<Tid>(r.u64);
}

Status Client::Commit(Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Commit(t)));
  return r.ToStatus();
}

Status Client::Abort(Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Abort(t)));
  return r.ToStatus();
}

Result<ObjectId> Client::Create(const std::vector<uint8_t>& bytes, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Create(bytes, t)));
  if (!r.ok()) return r.ToStatus();
  return static_cast<ObjectId>(r.u64);
}

Result<std::vector<uint8_t>> Client::Get(ObjectId oid, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Get(oid, t)));
  if (!r.ok()) return r.ToStatus();
  return std::move(r.bytes);
}

Status Client::Put(ObjectId oid, const std::vector<uint8_t>& bytes, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Put(oid, bytes, t)));
  return r.ToStatus();
}

Status Client::Delete(ObjectId oid, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Delete(oid, t)));
  return r.ToStatus();
}

Result<ObjectId> Client::CreateCounter(int64_t initial, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r,
                         Call(api::Command::CreateCounter(initial, t)));
  if (!r.ok()) return r.ToStatus();
  return static_cast<ObjectId>(r.u64);
}

Status Client::Add(ObjectId oid, int64_t delta, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Add(oid, delta, t)));
  return r.ToStatus();
}

Result<int64_t> Client::GetCounter(ObjectId oid, Tid t) {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::GetCounter(oid, t)));
  if (!r.ok()) return r.ToStatus();
  return r.i64;
}

Status Client::Ping() {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Ping()));
  return r.ToStatus();
}

Status Client::Checkpoint() {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Checkpoint()));
  return r.ToStatus();
}

Result<std::string> Client::Metrics() {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::Metrics()));
  if (!r.ok()) return r.ToStatus();
  return std::move(r.text);
}

Result<std::string> Client::DumpTrace() {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::DumpTrace()));
  if (!r.ok()) return r.ToStatus();
  return std::move(r.text);
}

Result<std::string> Client::SlowLog() {
  ASSET_ASSIGN_OR_RETURN(api::Reply r, Call(api::Command::SlowLog()));
  if (!r.ok()) return r.ToStatus();
  return std::move(r.text);
}

}  // namespace asset::client
