#ifndef ASSET_CLIENT_CLIENT_H_
#define ASSET_CLIENT_CLIENT_H_

/// \file client.h
/// Blocking client for the ASSET wire protocol.
///
/// One `Client` is one TCP connection and one server-side session; it
/// is single-threaded like the session it drives. Two calling styles
/// share the connection state:
///
///  - RPC: `Call(cmd)` sends one command and blocks for its reply.
///    The typed wrappers (Begin/Put/Commit/...) are sugar over it.
///  - Pipelining: `Send(cmd)` stages frames locally, `Flush()` writes
///    them in one syscall burst, and `Receive()` is then called once
///    per staged command, in order (the server replies strictly in
///    request order). This is how a round trip is amortized over a
///    whole Begin/Write/Commit batch — see `kCurrentTxn`.
///
/// Destruction closes the socket; the server aborts whatever
/// transactions the session still had open.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/command.h"
#include "common/result.h"
#include "common/status.h"

namespace asset::client {

class Client {
 public:
  struct Options {
    /// Largest reply frame payload this client will accept.
    size_t max_frame_bytes = 1 << 20;
    /// Skip the kHello exchange in Connect (only for talking to an
    /// endpoint that does not require it; the stock server does).
    bool skip_handshake = false;
  };

  /// Connects and (unless skipped) completes the version handshake.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 Options options);
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port) {
    return Connect(host, port, Options{});
  }

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Pipelined core -------------------------------------------------

  /// Stages one command frame in the local send buffer.
  void Send(const api::Command& cmd);
  /// Writes every staged frame to the socket.
  Status Flush();
  /// Blocks for the next reply frame. Call exactly once per Send()
  /// that was flushed, in order.
  Result<api::Reply> Receive();
  /// Send + Flush + Receive.
  Result<api::Reply> Call(const api::Command& cmd);

  // --- Typed RPC sugar ------------------------------------------------

  Result<Tid> Begin();
  Status Commit(Tid t = api::kCurrentTxn);
  Status Abort(Tid t = api::kCurrentTxn);
  Result<ObjectId> Create(const std::vector<uint8_t>& bytes,
                          Tid t = api::kCurrentTxn);
  Result<std::vector<uint8_t>> Get(ObjectId oid, Tid t = api::kCurrentTxn);
  Status Put(ObjectId oid, const std::vector<uint8_t>& bytes,
             Tid t = api::kCurrentTxn);
  Status Delete(ObjectId oid, Tid t = api::kCurrentTxn);
  Result<ObjectId> CreateCounter(int64_t initial, Tid t = api::kCurrentTxn);
  Status Add(ObjectId oid, int64_t delta, Tid t = api::kCurrentTxn);
  Result<int64_t> GetCounter(ObjectId oid, Tid t = api::kCurrentTxn);
  Status Ping();
  Status Checkpoint();
  /// The server's metrics text (kernel + asset_server_* families).
  Result<std::string> Metrics();

  /// Frames staged by Send() and not yet flushed.
  size_t staged() const { return staged_; }

 private:
  Client(int fd, Options options);

  /// Reads from the socket until `need` bytes are buffered.
  Status FillTo(size_t need);

  int fd_;
  Options options_;
  std::vector<uint8_t> send_buf_;
  size_t staged_ = 0;
  std::vector<uint8_t> recv_buf_;
  size_t recv_off_ = 0;
};

}  // namespace asset::client

#endif  // ASSET_CLIENT_CLIENT_H_
