#ifndef ASSET_CLIENT_CLIENT_H_
#define ASSET_CLIENT_CLIENT_H_

/// \file client.h
/// Blocking client for the ASSET wire protocol.
///
/// One `Client` is one TCP connection and one server-side session; it
/// is single-threaded like the session it drives. Two calling styles
/// share the connection state:
///
///  - RPC: `Call(cmd)` sends one command and blocks for its reply.
///    The typed wrappers (Begin/Put/Commit/...) are sugar over it.
///  - Pipelining: `Send(cmd)` stages frames locally, `Flush()` writes
///    them in one syscall burst, and `Receive()` is then called once
///    per staged command, in order (the server replies strictly in
///    request order). This is how a round trip is amortized over a
///    whole Begin/Write/Commit batch — see `kCurrentTxn`.
///
/// Robustness (docs/ROBUSTNESS.md):
///
///  - Every socket wait is bounded: connects by `connect_timeout`,
///    reads and writes by `io_timeout`. A stalled or silent peer
///    yields kTimedOut instead of hanging the caller forever.
///  - A transport failure (timeout, reset, EOF) marks the connection
///    dead; with `auto_reconnect` the next Call() transparently
///    re-dials and re-handshakes. Reconnection restores the
///    *transport*, not the session: the server aborted every
///    transaction the old session had open, so callers must restart
///    in-flight work from Begin.
///  - Only provably-unexecuted work is retried automatically: a
///    kOverloaded reply (the server shed the command before executing
///    it) and a failed connect (nothing was ever sent). Both back off
///    exponentially with jitter, honoring the server's retry-after
///    hint. A mid-flight transport error is *not* retried — the
///    command may have executed — and surfaces to the caller.
///
/// Destruction closes the socket; the server aborts whatever
/// transactions the session still had open.

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "api/command.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"

namespace asset::client {

class Client {
 public:
  struct Options {
    /// Largest reply frame payload this client will accept.
    size_t max_frame_bytes = 1 << 20;
    /// Skip the kHello exchange in Connect (only for talking to an
    /// endpoint that does not require it; the stock server does).
    bool skip_handshake = false;
    /// Bound on establishing one TCP connection (0 = OS default,
    /// which can be minutes — prefer a real bound).
    std::chrono::milliseconds connect_timeout{5000};
    /// Bound on every individual socket wait while sending a request
    /// or awaiting a reply; 0 = wait forever (pre-robustness
    /// behavior, only for debugging).
    std::chrono::milliseconds io_timeout{5000};
    /// Automatic retries of retryable failures (kOverloaded replies,
    /// failed connects); 0 disables retry.
    int max_retries = 3;
    /// Exponential backoff between retries: attempt k sleeps
    /// base * 2^k (full jitter applied), never more than backoff_max,
    /// never less than the server's retry-after hint.
    std::chrono::milliseconds backoff_base{10};
    std::chrono::milliseconds backoff_max{500};
    /// Re-dial and re-handshake on the next Call() after the
    /// transport died. See the session-loss caveat above.
    bool auto_reconnect = true;
    /// Deadline budget stamped onto every command Send() stages that
    /// does not already carry one (0 = stamp nothing).
    uint32_t default_deadline_ms = 0;
    /// When set and enabled, every command is stamped with a wire
    /// trace context (one trace id per logical Call, a fresh span id
    /// per attempt) and each reply emits a kClientRpc round-trip span
    /// into this recorder. Stamping is version-gated: it only happens
    /// once the handshake proved the server speaks protocol v3+. The
    /// recorder must outlive the client.
    FlightRecorder* trace_recorder = nullptr;

    Status Validate() const;
  };

  /// What the robustness machinery has done so far (single-threaded,
  /// like the client).
  struct Stats {
    uint64_t retries = 0;          ///< Calls re-sent after kOverloaded.
    uint64_t reconnects = 0;       ///< Transports re-established.
    uint64_t overloaded_seen = 0;  ///< kOverloaded replies received.
    uint64_t timeouts = 0;         ///< Socket waits that hit io/connect timeout.
  };

  /// Connects (retrying failed dials per `max_retries`) and, unless
  /// skipped, completes the version handshake.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 Options options);
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port) {
    return Connect(host, port, Options{});
  }

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Pipelined core -------------------------------------------------

  /// Stages one command frame in the local send buffer (stamping
  /// default_deadline_ms if the command carries no deadline).
  void Send(const api::Command& cmd);
  /// Writes every staged frame to the socket. kTimedOut if a write
  /// stalls past io_timeout (the connection is then dead).
  Status Flush();
  /// Blocks (bounded by io_timeout per wait) for the next reply
  /// frame. Call exactly once per Send() that was flushed, in order.
  Result<api::Reply> Receive();
  /// Send + Flush + Receive, plus the retry loop: a kOverloaded reply
  /// backs off and re-sends up to max_retries times before being
  /// returned to the caller.
  Result<api::Reply> Call(const api::Command& cmd);

  // --- Typed RPC sugar ------------------------------------------------

  Result<Tid> Begin();
  Status Commit(Tid t = api::kCurrentTxn);
  Status Abort(Tid t = api::kCurrentTxn);
  Result<ObjectId> Create(const std::vector<uint8_t>& bytes,
                          Tid t = api::kCurrentTxn);
  Result<std::vector<uint8_t>> Get(ObjectId oid, Tid t = api::kCurrentTxn);
  Status Put(ObjectId oid, const std::vector<uint8_t>& bytes,
             Tid t = api::kCurrentTxn);
  Status Delete(ObjectId oid, Tid t = api::kCurrentTxn);
  Result<ObjectId> CreateCounter(int64_t initial, Tid t = api::kCurrentTxn);
  Status Add(ObjectId oid, int64_t delta, Tid t = api::kCurrentTxn);
  Result<int64_t> GetCounter(ObjectId oid, Tid t = api::kCurrentTxn);
  Status Ping();
  Status Checkpoint();
  /// The server's metrics text (kernel + asset_server_* families).
  Result<std::string> Metrics();
  /// The server's flight-recorder dump as Chrome trace_event JSON.
  Result<std::string> DumpTrace();
  /// The server's slow-request log as JSON.
  Result<std::string> SlowLog();

  /// Frames staged by Send() and not yet flushed.
  size_t staged() const { return staged_; }
  /// False after a transport failure until the next successful
  /// (re)connect.
  bool connected() const { return fd_ >= 0; }
  const Stats& stats() const { return stats_; }
  /// Protocol version the server declared in the handshake (0 before
  /// the first successful handshake).
  uint16_t server_version() const { return server_version_; }
  /// Trace id of the most recently stamped command (0 if none was
  /// ever stamped) — lets a caller correlate its last workload with a
  /// drained trace.
  uint64_t last_trace_id() const { return last_trace_id_; }

 private:
  Client(const std::string& host, uint16_t port, Options options);

  /// One bounded nonblocking dial + optional handshake; fills fd_.
  Status DialOnce();
  /// Reconnects (with backoff retries) if the transport is dead.
  Status EnsureConnected();
  /// Closes the socket and forgets buffered state; the session it
  /// backed is gone.
  void DropConnection();
  /// Bounded poll for `events` on fd_; kTimedOut on expiry.
  Status WaitFor(short events, const char* what);
  /// Reads from the socket until `need` bytes are buffered.
  Status FillTo(size_t need);
  /// Full-jitter exponential backoff sleep for retry `attempt`,
  /// at least `hint_ms` (the server's retry-after hint) long.
  void Backoff(int attempt, int64_t hint_ms);
  /// True once trace stamping may happen: a recorder is bound and
  /// enabled, and the server proved it speaks protocol v3+.
  bool TracingOn() const {
    return options_.trace_recorder != nullptr &&
           options_.trace_recorder->enabled() &&
           server_version_ >= 3;
  }
  /// A fresh nonzero trace/span id (rng-seeded so concurrent clients
  /// do not collide, counter-mixed so one client never repeats).
  uint64_t NewTraceId();

  /// One sent-but-unanswered command, matched FIFO to replies (the
  /// server answers strictly in request order).
  struct Inflight {
    uint64_t trace_id = 0;  ///< 0 = untraced (no kClientRpc emitted)
    uint64_t span_id = 0;
    uint8_t tag = 0;
    int64_t send_ns = 0;
  };

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  Options options_;
  Stats stats_;
  std::minstd_rand jitter_rng_;
  std::vector<uint8_t> send_buf_;
  size_t staged_ = 0;
  std::vector<uint8_t> recv_buf_;
  size_t recv_off_ = 0;
  std::deque<Inflight> inflight_;
  bool ever_connected_ = false;  ///< a dial once succeeded (reconnect stat)
  uint16_t server_version_ = 0;
  uint64_t trace_counter_ = 0;
  uint64_t last_trace_id_ = 0;
};

}  // namespace asset::client

#endif  // ASSET_CLIENT_CLIENT_H_
