#include "api/command.h"

#include "api/wire.h"

namespace asset::api {

namespace {

/// Object-set cap in one command: a delegation/permit over more ids
/// than this is rejected at decode time (it would never fit a sane
/// frame anyway and bounds allocation on hostile input).
constexpr uint32_t kMaxObjSetIds = 1u << 20;

/// Envelope flag bits (the u8 after the command tag). Unknown bits are
/// a decode error — a v3 sender cannot silently lose semantics on a v2
/// receiver.
constexpr uint8_t kFlagHasDeadline = 1u << 0;
constexpr uint8_t kFlagHasTrace = 1u << 1;  ///< v3: trace id + span id
constexpr uint8_t kKnownFlags = kFlagHasDeadline | kFlagHasTrace;

bool HasOid(CommandType t) {
  switch (t) {
    case CommandType::kGet:
    case CommandType::kPut:
    case CommandType::kDelete:
    case CommandType::kAdd:
    case CommandType::kGetCounter:
      return true;
    default:
      return false;
  }
}

bool HasPayload(CommandType t) {
  return t == CommandType::kCreate || t == CommandType::kPut;
}

bool HasI64(CommandType t) {
  return t == CommandType::kCreateCounter || t == CommandType::kAdd;
}

void PutObjectSetFields(WireWriter* w, const Command& cmd) {
  w->PutU8(cmd.objs_all ? 1 : 0);
  if (!cmd.objs_all) {
    w->PutU32(static_cast<uint32_t>(cmd.objs.size()));
    for (ObjectId id : cmd.objs) w->PutU64(id);
  }
}

bool GetObjectSetFields(WireReader* r, Command* cmd) {
  uint8_t all;
  if (!r->GetU8(&all)) return false;
  if (all > 1) return false;
  cmd->objs_all = all == 1;
  cmd->objs.clear();
  if (cmd->objs_all) return true;
  uint32_t n;
  if (!r->GetU32(&n)) return false;
  if (n > kMaxObjSetIds || static_cast<size_t>(n) * 8 > r->Remaining()) {
    return false;
  }
  cmd->objs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ObjectId id;
    if (!r->GetU64(&id)) return false;
    cmd->objs.push_back(id);
  }
  return true;
}

}  // namespace

bool IsValidCommandType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(CommandType::kHello) &&
         raw <= static_cast<uint8_t>(CommandType::kSlowLog);
}

const char* CommandTypeToString(CommandType t) {
  switch (t) {
    case CommandType::kHello: return "hello";
    case CommandType::kPing: return "ping";
    case CommandType::kBegin: return "begin";
    case CommandType::kCommit: return "commit";
    case CommandType::kAbort: return "abort";
    case CommandType::kCreate: return "create";
    case CommandType::kGet: return "get";
    case CommandType::kPut: return "put";
    case CommandType::kDelete: return "delete";
    case CommandType::kCreateCounter: return "create_counter";
    case CommandType::kAdd: return "add";
    case CommandType::kGetCounter: return "get_counter";
    case CommandType::kDelegate: return "delegate";
    case CommandType::kPermit: return "permit";
    case CommandType::kDependency: return "dependency";
    case CommandType::kCheckpoint: return "checkpoint";
    case CommandType::kMetrics: return "metrics";
    case CommandType::kDumpTrace: return "dump_trace";
    case CommandType::kSlowLog: return "slow_log";
  }
  return "unknown";
}

Command Command::Hello() {
  Command c;
  c.type = CommandType::kHello;
  c.magic = kProtocolMagic;
  c.version = kProtocolVersion;
  return c;
}

Command Command::Ping() {
  Command c;
  c.type = CommandType::kPing;
  return c;
}

Command Command::Begin() {
  Command c;
  c.type = CommandType::kBegin;
  return c;
}

Command Command::Commit(Tid t) {
  Command c;
  c.type = CommandType::kCommit;
  c.tid = t;
  return c;
}

Command Command::Abort(Tid t) {
  Command c;
  c.type = CommandType::kAbort;
  c.tid = t;
  return c;
}

Command Command::Create(std::span<const uint8_t> data, Tid t) {
  Command c;
  c.type = CommandType::kCreate;
  c.tid = t;
  c.payload.assign(data.begin(), data.end());
  return c;
}

Command Command::Get(ObjectId oid, Tid t) {
  Command c;
  c.type = CommandType::kGet;
  c.tid = t;
  c.oid = oid;
  return c;
}

Command Command::Put(ObjectId oid, std::span<const uint8_t> data, Tid t) {
  Command c;
  c.type = CommandType::kPut;
  c.tid = t;
  c.oid = oid;
  c.payload.assign(data.begin(), data.end());
  return c;
}

Command Command::Delete(ObjectId oid, Tid t) {
  Command c;
  c.type = CommandType::kDelete;
  c.tid = t;
  c.oid = oid;
  return c;
}

Command Command::CreateCounter(int64_t initial, Tid t) {
  Command c;
  c.type = CommandType::kCreateCounter;
  c.tid = t;
  c.i64 = initial;
  return c;
}

Command Command::Add(ObjectId oid, int64_t delta, Tid t) {
  Command c;
  c.type = CommandType::kAdd;
  c.tid = t;
  c.oid = oid;
  c.i64 = delta;
  return c;
}

Command Command::GetCounter(ObjectId oid, Tid t) {
  Command c;
  c.type = CommandType::kGetCounter;
  c.tid = t;
  c.oid = oid;
  return c;
}

Command Command::Delegate(Tid ti, Tid tj, ObjectSet objs) {
  Command c;
  c.type = CommandType::kDelegate;
  c.tid = ti;
  c.tid2 = tj;
  c.objs_all = objs.IsAll();
  c.objs = objs.ids();
  return c;
}

Command Command::Permit(Tid ti, Tid tj, ObjectSet objs, OpSet ops) {
  Command c;
  c.type = CommandType::kPermit;
  c.tid = ti;
  c.tid2 = tj;
  c.objs_all = objs.IsAll();
  c.objs = objs.ids();
  c.ops = ops.bits();
  return c;
}

Command Command::PermitAnyTxn(Tid ti, ObjectSet objs, OpSet ops) {
  Command c = Permit(ti, kAnyTxn, std::move(objs), ops);
  return c;
}

Command Command::Dependency(DependencyType type, Tid ti, Tid tj) {
  Command c;
  c.type = CommandType::kDependency;
  c.dep_type = static_cast<uint8_t>(type);
  c.tid = ti;
  c.tid2 = tj;
  return c;
}

Command Command::Checkpoint() {
  Command c;
  c.type = CommandType::kCheckpoint;
  return c;
}

Command Command::Metrics() {
  Command c;
  c.type = CommandType::kMetrics;
  return c;
}

Command Command::DumpTrace() {
  Command c;
  c.type = CommandType::kDumpTrace;
  return c;
}

Command Command::SlowLog() {
  Command c;
  c.type = CommandType::kSlowLog;
  return c;
}

Status Reply::ToStatus() const {
  if (ok()) return Status::OK();
  return Status(code, message);
}

Reply Reply::Ok() { return Reply(); }

Reply Reply::OkTid(Tid t) {
  Reply r;
  r.kind = ReplyValueKind::kTid;
  r.u64 = t;
  return r;
}

Reply Reply::OkOid(ObjectId oid) {
  Reply r;
  r.kind = ReplyValueKind::kOid;
  r.u64 = oid;
  return r;
}

Reply Reply::OkI64(int64_t v) {
  Reply r;
  r.kind = ReplyValueKind::kI64;
  r.i64 = v;
  return r;
}

Reply Reply::OkBytes(std::vector<uint8_t> b) {
  Reply r;
  r.kind = ReplyValueKind::kBytes;
  r.bytes = std::move(b);
  return r;
}

Reply Reply::OkText(std::string t) {
  Reply r;
  r.kind = ReplyValueKind::kText;
  r.text = std::move(t);
  return r;
}

Reply Reply::FromStatus(const Status& s) {
  Reply r;
  r.code = s.code();
  r.message = s.message();
  return r;
}

void EncodeCommand(const Command& cmd, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.PutU8(static_cast<uint8_t>(cmd.type));
  // The envelope header: flags, then each flagged optional field in
  // flag-bit order (deadline budget, then v3 trace context).
  uint8_t flags = 0;
  if (cmd.deadline_ms > 0) flags |= kFlagHasDeadline;
  if (cmd.trace_id != 0) flags |= kFlagHasTrace;
  w.PutU8(flags);
  if (cmd.deadline_ms > 0) w.PutU32(cmd.deadline_ms);
  if (cmd.trace_id != 0) {
    w.PutU64(cmd.trace_id);
    w.PutU64(cmd.span_id);
  }
  switch (cmd.type) {
    case CommandType::kHello:
      w.PutU32(cmd.magic);
      w.PutU16(cmd.version);
      return;
    case CommandType::kPing:
    case CommandType::kBegin:
    case CommandType::kCheckpoint:
    case CommandType::kMetrics:
    case CommandType::kDumpTrace:
    case CommandType::kSlowLog:
      return;
    case CommandType::kDelegate:
      w.PutU64(cmd.tid);
      w.PutU64(cmd.tid2);
      PutObjectSetFields(&w, cmd);
      return;
    case CommandType::kPermit:
      w.PutU64(cmd.tid);
      w.PutU64(cmd.tid2);
      PutObjectSetFields(&w, cmd);
      w.PutU8(cmd.ops);
      return;
    case CommandType::kDependency:
      w.PutU8(cmd.dep_type);
      w.PutU64(cmd.tid);
      w.PutU64(cmd.tid2);
      return;
    default:
      break;
  }
  // The data-plane shapes share a prefix: tid [oid] [i64] [payload].
  w.PutU64(cmd.tid);
  if (HasOid(cmd.type)) w.PutU64(cmd.oid);
  if (HasI64(cmd.type)) w.PutI64(cmd.i64);
  if (HasPayload(cmd.type)) w.PutBytes(cmd.payload);
}

Result<Command> DecodeCommand(std::span<const uint8_t> payload) {
  WireReader r(payload);
  uint8_t raw;
  if (!r.GetU8(&raw)) {
    return Status::InvalidArgument("command: empty payload");
  }
  if (!IsValidCommandType(raw)) {
    return Status::InvalidArgument("command: unknown type " +
                                   std::to_string(raw));
  }
  Command cmd;
  cmd.type = static_cast<CommandType>(raw);
  uint8_t flags;
  if (!r.GetU8(&flags)) {
    return Status::InvalidArgument("command: truncated envelope");
  }
  if ((flags & ~kKnownFlags) != 0) {
    return Status::InvalidArgument("command: unknown envelope flags " +
                                   std::to_string(flags));
  }
  if ((flags & kFlagHasDeadline) != 0) {
    if (!r.GetU32(&cmd.deadline_ms)) {
      return Status::InvalidArgument("command: truncated deadline");
    }
    if (cmd.deadline_ms == 0) {
      return Status::InvalidArgument("command: zero deadline with flag set");
    }
  }
  if ((flags & kFlagHasTrace) != 0) {
    if (!r.GetU64(&cmd.trace_id) || !r.GetU64(&cmd.span_id)) {
      return Status::InvalidArgument("command: truncated trace context");
    }
    if (cmd.trace_id == 0) {
      return Status::InvalidArgument("command: zero trace id with flag set");
    }
  }
  bool ok = true;
  switch (cmd.type) {
    case CommandType::kHello:
      ok = r.GetU32(&cmd.magic) && r.GetU16(&cmd.version);
      break;
    case CommandType::kPing:
    case CommandType::kBegin:
    case CommandType::kCheckpoint:
    case CommandType::kMetrics:
    case CommandType::kDumpTrace:
    case CommandType::kSlowLog:
      break;
    case CommandType::kDelegate:
      ok = r.GetU64(&cmd.tid) && r.GetU64(&cmd.tid2) &&
           GetObjectSetFields(&r, &cmd);
      break;
    case CommandType::kPermit:
      ok = r.GetU64(&cmd.tid) && r.GetU64(&cmd.tid2) &&
           GetObjectSetFields(&r, &cmd) && r.GetU8(&cmd.ops);
      break;
    case CommandType::kDependency:
      ok = r.GetU8(&cmd.dep_type) && r.GetU64(&cmd.tid) &&
           r.GetU64(&cmd.tid2);
      if (ok && cmd.dep_type >
                    static_cast<uint8_t>(DependencyType::kBeginOnCommit)) {
        return Status::InvalidArgument("command: unknown dependency type");
      }
      break;
    default:
      ok = r.GetU64(&cmd.tid);
      if (ok && HasOid(cmd.type)) ok = r.GetU64(&cmd.oid);
      if (ok && HasI64(cmd.type)) ok = r.GetI64(&cmd.i64);
      if (ok && HasPayload(cmd.type)) ok = r.GetBytes(&cmd.payload);
      break;
  }
  if (!ok) {
    return Status::InvalidArgument("command: truncated payload");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("command: trailing bytes");
  }
  return cmd;
}

void EncodeReply(const Reply& reply, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.PutU8(static_cast<uint8_t>(reply.code));
  w.PutString(reply.message);
  w.PutU8(static_cast<uint8_t>(reply.kind));
  switch (reply.kind) {
    case ReplyValueKind::kNone:
      break;
    case ReplyValueKind::kTid:
    case ReplyValueKind::kOid:
      w.PutU64(reply.u64);
      break;
    case ReplyValueKind::kI64:
      w.PutI64(reply.i64);
      break;
    case ReplyValueKind::kBytes:
      w.PutBytes(reply.bytes);
      break;
    case ReplyValueKind::kText:
      w.PutString(reply.text);
      break;
  }
}

Result<Reply> DecodeReply(std::span<const uint8_t> payload) {
  WireReader r(payload);
  uint8_t code, kind;
  Reply reply;
  if (!r.GetU8(&code) || !r.GetString(&reply.message) || !r.GetU8(&kind)) {
    return Status::InvalidArgument("reply: truncated payload");
  }
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("reply: unknown status code");
  }
  if (kind > static_cast<uint8_t>(ReplyValueKind::kText)) {
    return Status::InvalidArgument("reply: unknown value kind");
  }
  reply.code = static_cast<StatusCode>(code);
  reply.kind = static_cast<ReplyValueKind>(kind);
  bool ok = true;
  switch (reply.kind) {
    case ReplyValueKind::kNone:
      break;
    case ReplyValueKind::kTid:
    case ReplyValueKind::kOid:
      ok = r.GetU64(&reply.u64);
      break;
    case ReplyValueKind::kI64:
      ok = r.GetI64(&reply.i64);
      break;
    case ReplyValueKind::kBytes:
      ok = r.GetBytes(&reply.bytes);
      break;
    case ReplyValueKind::kText:
      ok = r.GetString(&reply.text);
      break;
  }
  if (!ok) return Status::InvalidArgument("reply: truncated payload");
  if (!r.AtEnd()) return Status::InvalidArgument("reply: trailing bytes");
  return reply;
}

}  // namespace asset::api
