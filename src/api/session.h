#ifndef ASSET_API_SESSION_H_
#define ASSET_API_SESSION_H_

/// \file session.h
/// The in-process dispatcher of the command API.
///
/// An `ApiSession` is one client's seat at the database: it executes
/// `Command`s against a `Database` and owns every transaction the
/// client begins, so a dropped connection (the session's destruction)
/// aborts whatever was in flight — a network client can never leak a
/// lock-holding transaction any more than a local `Txn` holder can.
///
/// Confinement: a session must be driven from one thread at a time
/// (the transactions it owns are kernel *session* transactions, which
/// carry the same rule). The epoll server satisfies this by pinning
/// each connection to one event-loop worker; in-process users just
/// call Execute from one thread.
///
/// Tid resolution: `kCurrentTxn` (0) in a command resolves to the
/// session's most recently begun, still-open transaction; data
/// operations and commit/abort are only valid on transactions this
/// session owns. Delegation/permit/dependency targets may be any
/// kernel tid — cross-session cooperation is the point of those
/// primitives.

#include <chrono>
#include <cstdint>
#include <unordered_map>

#include "api/command.h"
#include "core/database.h"

namespace asset::api {

/// Per-client command executor and transaction owner.
class ApiSession {
 public:
  struct Limits {
    /// Open (begun, unterminated) transactions one session may hold;
    /// kBegin past this returns kResourceExhausted.
    size_t max_open_txns = 64;
    /// Whether a kHello must precede every other command (the wire
    /// server requires it; in-process users may skip).
    bool require_hello = false;
  };

  explicit ApiSession(Database* db) : ApiSession(db, Limits{}) {}
  ApiSession(Database* db, Limits limits);

  /// Aborts every still-open transaction of this session.
  ~ApiSession() = default;

  ApiSession(const ApiSession&) = delete;
  ApiSession& operator=(const ApiSession&) = delete;
  ApiSession(ApiSession&&) = default;
  ApiSession& operator=(ApiSession&&) = default;

  /// Deadline outcomes of this session, for the server's metrics (the
  /// session is single-threaded, so plain counters suffice).
  struct DeadlineStats {
    /// Commands whose budget had already expired before dispatch.
    uint64_t expired_rejects = 0;
    /// Commands whose kernel wait hit the deadline mid-flight; each
    /// aborted its target transaction.
    uint64_t timeout_aborts = 0;
  };

  /// Executes one command; never throws, never returns garbage — every
  /// failure is a Reply with the status code and message. Ignores any
  /// deadline the command carries (in-process callers have no arrival
  /// anchor); the wire server uses the overload below.
  Reply Execute(const Command& cmd);

  /// Executes one command whose deadline budget (if any) is anchored at
  /// `arrival` — the moment the command's bytes were received. An
  /// already-expired command is rejected with kTimedOut before dispatch
  /// and its target transaction (if this session owns it) is aborted so
  /// a skipped step can never leave a half-executed transaction; an
  /// admitted command runs with its kernel lock waits bounded by the
  /// remaining budget and gets the same abort treatment if a wait times
  /// out. kAbort is exempt: aborts are how deadlines clean up, so they
  /// always dispatch.
  Reply Execute(const Command& cmd,
                std::chrono::steady_clock::time_point arrival);

  /// Aborts every open transaction now (graceful server drain).
  void AbortAll();

  /// Open transactions owned by this session.
  size_t open_txns() const { return txns_.size(); }
  /// The tid kCurrentTxn resolves to (kNullTid if none).
  Tid current() const { return current_; }
  /// True once a valid kHello was executed.
  bool handshaken() const { return handshaken_; }
  const DeadlineStats& deadline_stats() const { return deadline_stats_; }

 private:
  /// Maps a wire tid to an owned transaction handle, resolving
  /// kCurrentTxn. Null on failure, with *error filled.
  Txn* Resolve(Tid wire_tid, Reply* error);
  /// Aborts the owned transaction `wire_tid` names (kCurrentTxn
  /// resolved); returns false if this session owns no such transaction.
  bool AbortOwned(Tid wire_tid);
  /// True for commands that operate on a transaction this session owns
  /// (the ones a deadline expiry must abort).
  static bool TargetsOwnedTxn(CommandType t);
  /// Resolves a primitive's tid argument (kCurrentTxn allowed, any
  /// kernel tid passed through).
  Tid ResolveLoose(Tid wire_tid) const {
    return wire_tid == kCurrentTxn ? current_ : wire_tid;
  }

  Database* db_;
  Limits limits_;
  DeadlineStats deadline_stats_;
  bool handshaken_ = false;
  std::unordered_map<Tid, Txn> txns_;
  Tid current_ = kNullTid;
};

}  // namespace asset::api

#endif  // ASSET_API_SESSION_H_
