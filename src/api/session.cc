#include "api/session.h"

#include <string>
#include <utility>

namespace asset::api {

ApiSession::ApiSession(Database* db, Limits limits)
    : db_(db), limits_(limits) {}

void ApiSession::AbortAll() {
  txns_.clear();  // Txn destructors abort anything still active
  current_ = kNullTid;
}

Txn* ApiSession::Resolve(Tid wire_tid, Reply* error) {
  Tid t = wire_tid == kCurrentTxn ? current_ : wire_tid;
  if (t == kNullTid) {
    *error = Reply::FromStatus(
        Status::InvalidArgument("session: no current transaction"));
    return nullptr;
  }
  auto it = txns_.find(t);
  if (it == txns_.end()) {
    *error = Reply::FromStatus(Status::NotFound(
        "session: transaction " + std::to_string(t) +
        " is not owned by this session"));
    return nullptr;
  }
  return &it->second;
}

Reply ApiSession::Execute(const Command& cmd) {
  if (limits_.require_hello && !handshaken_ &&
      cmd.type != CommandType::kHello) {
    return Reply::FromStatus(
        Status::IllegalState("session: handshake required before " +
                             std::string(CommandTypeToString(cmd.type))));
  }
  switch (cmd.type) {
    case CommandType::kHello: {
      if (cmd.magic != kProtocolMagic) {
        return Reply::FromStatus(
            Status::InvalidArgument("hello: bad protocol magic"));
      }
      if (cmd.version != kProtocolVersion) {
        return Reply::FromStatus(Status::InvalidArgument(
            "hello: unsupported protocol version " +
            std::to_string(cmd.version) + " (server speaks " +
            std::to_string(kProtocolVersion) + ")"));
      }
      handshaken_ = true;
      return Reply::OkI64(kProtocolVersion);
    }
    case CommandType::kPing:
      return Reply::Ok();

    case CommandType::kBegin: {
      if (txns_.size() >= limits_.max_open_txns) {
        return Reply::FromStatus(Status::ResourceExhausted(
            "session: open-transaction limit (" +
            std::to_string(limits_.max_open_txns) + ") reached"));
      }
      auto txn = db_->Begin();
      if (!txn.ok()) return Reply::FromStatus(txn.status());
      Tid t = txn->id();
      txns_.emplace(t, std::move(*txn));
      current_ = t;
      return Reply::OkTid(t);
    }

    case CommandType::kCommit:
    case CommandType::kAbort: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      Tid t = txn->id();
      Status s = cmd.type == CommandType::kCommit ? txn->Commit()
                                                  : txn->Abort();
      txns_.erase(t);
      if (current_ == t) current_ = kNullTid;
      return Reply::FromStatus(s);
    }

    case CommandType::kCreate: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      auto oid = txn->CreateObject(cmd.payload);
      if (!oid.ok()) return Reply::FromStatus(oid.status());
      return Reply::OkOid(*oid);
    }
    case CommandType::kGet: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      auto bytes = txn->Read(cmd.oid);
      if (!bytes.ok()) return Reply::FromStatus(bytes.status());
      return Reply::OkBytes(std::move(*bytes));
    }
    case CommandType::kPut: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      return Reply::FromStatus(txn->Write(cmd.oid, cmd.payload));
    }
    case CommandType::kDelete: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      return Reply::FromStatus(txn->Delete(cmd.oid));
    }

    case CommandType::kCreateCounter: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      auto oid = txn->CreateCounter(cmd.i64);
      if (!oid.ok()) return Reply::FromStatus(oid.status());
      return Reply::OkOid(*oid);
    }
    case CommandType::kAdd: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      return Reply::FromStatus(txn->Add(cmd.oid, cmd.i64));
    }
    case CommandType::kGetCounter: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      auto v = txn->GetCounter(cmd.oid);
      if (!v.ok()) return Reply::FromStatus(v.status());
      return Reply::OkI64(*v);
    }

    case CommandType::kDelegate: {
      Tid ti = ResolveLoose(cmd.tid);
      Tid tj = ResolveLoose(cmd.tid2);
      if (ti == kNullTid || tj == kNullTid) {
        return Reply::FromStatus(Status::InvalidArgument(
            "delegate: no current transaction to resolve"));
      }
      return Reply::FromStatus(db_->Delegate(ti, tj, cmd.object_set()));
    }
    case CommandType::kPermit: {
      Tid ti = ResolveLoose(cmd.tid);
      if (ti == kNullTid) {
        return Reply::FromStatus(Status::InvalidArgument(
            "permit: no current transaction to resolve"));
      }
      OpSet ops = OpSet::FromBits(cmd.ops);
      if (cmd.tid2 == kAnyTxn) {
        return Reply::FromStatus(db_->PermitAny(ti, cmd.object_set(), ops));
      }
      Tid tj = ResolveLoose(cmd.tid2);
      if (tj == kNullTid) {
        return Reply::FromStatus(Status::InvalidArgument(
            "permit: no current transaction to resolve"));
      }
      return Reply::FromStatus(db_->Permit(ti, tj, cmd.object_set(), ops));
    }
    case CommandType::kDependency: {
      Tid ti = ResolveLoose(cmd.tid);
      Tid tj = ResolveLoose(cmd.tid2);
      if (ti == kNullTid || tj == kNullTid) {
        return Reply::FromStatus(Status::InvalidArgument(
            "dependency: no current transaction to resolve"));
      }
      return Reply::FromStatus(db_->FormDependency(
          static_cast<DependencyType>(cmd.dep_type), ti, tj));
    }

    case CommandType::kCheckpoint:
      return Reply::FromStatus(db_->Checkpoint());
    case CommandType::kMetrics:
      return Reply::OkText(db_->MetricsText());
  }
  return Reply::FromStatus(
      Status::InvalidArgument("session: unknown command"));
}

}  // namespace asset::api
