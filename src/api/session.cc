#include "api/session.h"

#include <string>
#include <utility>

#include "core/op_deadline.h"

namespace asset::api {

ApiSession::ApiSession(Database* db, Limits limits)
    : db_(db), limits_(limits) {}

void ApiSession::AbortAll() {
  txns_.clear();  // Txn destructors abort anything still active
  current_ = kNullTid;
}

bool ApiSession::TargetsOwnedTxn(CommandType t) {
  switch (t) {
    case CommandType::kCommit:
    case CommandType::kCreate:
    case CommandType::kGet:
    case CommandType::kPut:
    case CommandType::kDelete:
    case CommandType::kCreateCounter:
    case CommandType::kAdd:
    case CommandType::kGetCounter:
      return true;
    default:
      // kBegin has no transaction yet; kDelegate/kPermit/kDependency may
      // name other sessions' transactions, which a deadline expiry here
      // must never abort; control commands touch none.
      return false;
  }
}

bool ApiSession::AbortOwned(Tid wire_tid) {
  Tid t = wire_tid == kCurrentTxn ? current_ : wire_tid;
  if (t == kNullTid) return false;
  auto it = txns_.find(t);
  if (it == txns_.end()) return false;
  it->second.Abort();
  txns_.erase(it);
  if (current_ == t) current_ = kNullTid;
  return true;
}

Reply ApiSession::Execute(const Command& cmd,
                          std::chrono::steady_clock::time_point arrival) {
  if (cmd.deadline_ms == 0 || cmd.type == CommandType::kAbort) {
    return Execute(cmd);
  }
  const auto deadline = arrival + std::chrono::milliseconds(cmd.deadline_ms);
  if (std::chrono::steady_clock::now() >= deadline) {
    ++deadline_stats_.expired_rejects;
    std::string detail = "session: deadline of " +
                         std::to_string(cmd.deadline_ms) +
                         " ms expired before " +
                         std::string(CommandTypeToString(cmd.type)) +
                         " was dispatched";
    if (TargetsOwnedTxn(cmd.type) && AbortOwned(cmd.tid)) {
      detail += "; transaction aborted";
    }
    return Reply::FromStatus(Status::TimedOut(std::move(detail)));
  }
  Reply reply;
  {
    ScopedOpDeadline guard(deadline);
    reply = Execute(cmd);
  }
  if (reply.code == StatusCode::kTimedOut && TargetsOwnedTxn(cmd.type)) {
    // The kernel wait hit the deadline. The operation itself unwound
    // cleanly (a timed-out lock acquire changes nothing), but the
    // transaction now holds a half-executed *intent*; abort it so the
    // client can retry from a clean slate. Commit resolves its own
    // handle, so the txn may already be gone — AbortOwned tolerates that.
    ++deadline_stats_.timeout_aborts;
    if (AbortOwned(cmd.tid)) reply.message += "; transaction aborted";
  }
  return reply;
}

Txn* ApiSession::Resolve(Tid wire_tid, Reply* error) {
  Tid t = wire_tid == kCurrentTxn ? current_ : wire_tid;
  if (t == kNullTid) {
    *error = Reply::FromStatus(
        Status::InvalidArgument("session: no current transaction"));
    return nullptr;
  }
  auto it = txns_.find(t);
  if (it == txns_.end()) {
    *error = Reply::FromStatus(Status::NotFound(
        "session: transaction " + std::to_string(t) +
        " is not owned by this session"));
    return nullptr;
  }
  return &it->second;
}

Reply ApiSession::Execute(const Command& cmd) {
  if (limits_.require_hello && !handshaken_ &&
      cmd.type != CommandType::kHello) {
    return Reply::FromStatus(
        Status::IllegalState("session: handshake required before " +
                             std::string(CommandTypeToString(cmd.type))));
  }
  switch (cmd.type) {
    case CommandType::kHello: {
      if (cmd.magic != kProtocolMagic) {
        return Reply::FromStatus(
            Status::InvalidArgument("hello: bad protocol magic"));
      }
      if (cmd.version < kMinProtocolVersion ||
          cmd.version > kProtocolVersion) {
        return Reply::FromStatus(Status::InvalidArgument(
            "hello: unsupported protocol version " +
            std::to_string(cmd.version) + " (server speaks " +
            std::to_string(kMinProtocolVersion) + ".." +
            std::to_string(kProtocolVersion) + ")"));
      }
      handshaken_ = true;
      return Reply::OkI64(kProtocolVersion);
    }
    case CommandType::kPing:
      return Reply::Ok();

    case CommandType::kBegin: {
      if (txns_.size() >= limits_.max_open_txns) {
        return Reply::FromStatus(Status::ResourceExhausted(
            "session: open-transaction limit (" +
            std::to_string(limits_.max_open_txns) + ") reached"));
      }
      auto txn = db_->Begin();
      if (!txn.ok()) return Reply::FromStatus(txn.status());
      Tid t = txn->id();
      txns_.emplace(t, std::move(*txn));
      current_ = t;
      return Reply::OkTid(t);
    }

    case CommandType::kCommit:
    case CommandType::kAbort: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      Tid t = txn->id();
      Status s = cmd.type == CommandType::kCommit ? txn->Commit()
                                                  : txn->Abort();
      txns_.erase(t);
      if (current_ == t) current_ = kNullTid;
      return Reply::FromStatus(s);
    }

    case CommandType::kCreate: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      auto oid = txn->CreateObject(cmd.payload);
      if (!oid.ok()) return Reply::FromStatus(oid.status());
      return Reply::OkOid(*oid);
    }
    case CommandType::kGet: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      auto bytes = txn->Read(cmd.oid);
      if (!bytes.ok()) return Reply::FromStatus(bytes.status());
      return Reply::OkBytes(std::move(*bytes));
    }
    case CommandType::kPut: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      return Reply::FromStatus(txn->Write(cmd.oid, cmd.payload));
    }
    case CommandType::kDelete: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      return Reply::FromStatus(txn->Delete(cmd.oid));
    }

    case CommandType::kCreateCounter: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      auto oid = txn->CreateCounter(cmd.i64);
      if (!oid.ok()) return Reply::FromStatus(oid.status());
      return Reply::OkOid(*oid);
    }
    case CommandType::kAdd: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      return Reply::FromStatus(txn->Add(cmd.oid, cmd.i64));
    }
    case CommandType::kGetCounter: {
      Reply error;
      Txn* txn = Resolve(cmd.tid, &error);
      if (txn == nullptr) return error;
      auto v = txn->GetCounter(cmd.oid);
      if (!v.ok()) return Reply::FromStatus(v.status());
      return Reply::OkI64(*v);
    }

    case CommandType::kDelegate: {
      Tid ti = ResolveLoose(cmd.tid);
      Tid tj = ResolveLoose(cmd.tid2);
      if (ti == kNullTid || tj == kNullTid) {
        return Reply::FromStatus(Status::InvalidArgument(
            "delegate: no current transaction to resolve"));
      }
      return Reply::FromStatus(db_->Delegate(ti, tj, cmd.object_set()));
    }
    case CommandType::kPermit: {
      Tid ti = ResolveLoose(cmd.tid);
      if (ti == kNullTid) {
        return Reply::FromStatus(Status::InvalidArgument(
            "permit: no current transaction to resolve"));
      }
      OpSet ops = OpSet::FromBits(cmd.ops);
      if (cmd.tid2 == kAnyTxn) {
        return Reply::FromStatus(db_->PermitAny(ti, cmd.object_set(), ops));
      }
      Tid tj = ResolveLoose(cmd.tid2);
      if (tj == kNullTid) {
        return Reply::FromStatus(Status::InvalidArgument(
            "permit: no current transaction to resolve"));
      }
      return Reply::FromStatus(db_->Permit(ti, tj, cmd.object_set(), ops));
    }
    case CommandType::kDependency: {
      Tid ti = ResolveLoose(cmd.tid);
      Tid tj = ResolveLoose(cmd.tid2);
      if (ti == kNullTid || tj == kNullTid) {
        return Reply::FromStatus(Status::InvalidArgument(
            "dependency: no current transaction to resolve"));
      }
      return Reply::FromStatus(db_->FormDependency(
          static_cast<DependencyType>(cmd.dep_type), ti, tj));
    }

    case CommandType::kCheckpoint:
      return Reply::FromStatus(db_->Checkpoint());
    case CommandType::kMetrics:
      return Reply::OkText(db_->MetricsText());
    case CommandType::kDumpTrace:
      return Reply::OkText(db_->DumpTrace());
    case CommandType::kSlowLog:
      // In-process sessions have no connection stages, so no slow log;
      // the server overlays its own entries (kMetrics-style).
      return Reply::OkText("{\"slow_requests\":[]}");
  }
  return Reply::FromStatus(
      Status::InvalidArgument("session: unknown command"));
}

}  // namespace asset::api
