#ifndef ASSET_API_WIRE_H_
#define ASSET_API_WIRE_H_

/// \file wire.h
/// Byte-level primitives of the ASSET wire protocol (docs/NETWORK.md).
///
/// Everything on the wire is little-endian and fixed-width; variable
/// payloads are length-prefixed. `WireWriter` appends onto a caller's
/// vector (so one connection reuses one buffer); `WireReader` is a
/// bounds-checked cursor over a received payload — every getter fails
/// cleanly on truncation instead of reading past the end, which is the
/// property the malformed-frame fuzz tests lean on.
///
/// A *frame* is a u32 payload length followed by that many payload
/// bytes. The length never counts its own four bytes. Frame assembly
/// and splitting live here so the server, the client, and the tests
/// share one implementation.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace asset::api {

/// Bytes of the u32 frame length prefix.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Appends integers/blobs to a byte vector in wire order.
class WireWriter {
 public:
  explicit WireWriter(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) { PutLE(v, 2); }
  void PutU32(uint32_t v) { PutLE(v, 4); }
  void PutU64(uint64_t v) { PutLE(v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  /// u32 length + raw bytes.
  void PutBytes(std::span<const uint8_t> data) {
    PutU32(static_cast<uint32_t>(data.size()));
    out_->insert(out_->end(), data.begin(), data.end());
  }
  void PutString(const std::string& s) {
    PutBytes(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }

 private:
  void PutLE(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t>* out_;
};

/// Bounds-checked cursor over one received payload. Every getter
/// returns false (leaving the output untouched) once the payload is
/// exhausted; `ok()` stays false from the first failure on.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

  bool GetU8(uint8_t* v) { return GetLE(v, 1); }
  bool GetU16(uint16_t* v) { return GetLE(v, 2); }
  bool GetU32(uint32_t* v) { return GetLE(v, 4); }
  bool GetU64(uint64_t* v) { return GetLE(v, 8); }
  bool GetI64(int64_t* v) {
    uint64_t u;
    if (!GetU64(&u)) return false;
    std::memcpy(v, &u, sizeof(u));
    return true;
  }

  /// u32 length + raw bytes. Fails if the advertised length overruns
  /// the payload (a truncated or lying frame).
  bool GetBytes(std::vector<uint8_t>* out) {
    uint32_t n;
    if (!GetU32(&n)) return false;
    if (n > Remaining()) return Fail();
    out->assign(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return true;
  }
  bool GetString(std::string* out) {
    std::vector<uint8_t> bytes;
    if (!GetBytes(&bytes)) return false;
    out->assign(bytes.begin(), bytes.end());
    return true;
  }

  size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  template <typename T>
  bool GetLE(T* v, size_t bytes) {
    if (!ok_ || Remaining() < bytes) return Fail();
    uint64_t acc = 0;
    for (size_t i = 0; i < bytes; ++i) {
      acc |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    *v = static_cast<T>(acc);
    pos_ += bytes;
    return true;
  }

  bool Fail() {
    ok_ = false;
    return false;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Wraps `payload` in a frame appended to `out`.
inline void AppendFrame(std::span<const uint8_t> payload,
                        std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

/// Outcome of TrySplitFrame on a receive buffer.
enum class FrameSplit : uint8_t {
  /// `*payload` holds one complete frame payload; consume
  /// kFrameHeaderBytes + payload->size() from the buffer.
  kFrame,
  /// Not enough buffered bytes yet; read more.
  kNeedMore,
  /// The advertised length is 0 or exceeds `max_frame_bytes`; the
  /// stream cannot be resynchronized and must be closed.
  kOversized,
};

/// Peeks at the front of a receive buffer for one complete frame.
/// Does not consume; the caller erases the frame after processing so a
/// failed dispatch can still see the bytes.
inline FrameSplit TrySplitFrame(std::span<const uint8_t> buffer,
                                size_t max_frame_bytes,
                                std::span<const uint8_t>* payload) {
  if (buffer.size() < kFrameHeaderBytes) return FrameSplit::kNeedMore;
  uint32_t len = 0;
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    len |= static_cast<uint32_t>(buffer[i]) << (8 * i);
  }
  if (len == 0 || len > max_frame_bytes) return FrameSplit::kOversized;
  if (buffer.size() < kFrameHeaderBytes + len) return FrameSplit::kNeedMore;
  *payload = buffer.subspan(kFrameHeaderBytes, len);
  return FrameSplit::kFrame;
}

}  // namespace asset::api

#endif  // ASSET_API_WIRE_H_
