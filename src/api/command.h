#ifndef ASSET_API_COMMAND_H_
#define ASSET_API_COMMAND_H_

/// \file command.h
/// The transport-agnostic command layer: a `Command`/`Reply` pair
/// mirroring the `Database` surface (begin/commit/abort, object and
/// counter data operations, the §2.2 primitives, checkpoint, metrics),
/// with its own wire encoding.
///
/// Both faces of the system speak this vocabulary: `ApiSession`
/// (session.h) executes commands against an in-process `Database`, and
/// the epoll server (src/server/) is a thin shell that decodes frames
/// into commands, hands them to its connection's ApiSession, and
/// encodes the replies back out. The blocking client (src/client/)
/// builds the same structs and never sees a socket detail beyond
/// connect/close. Anything expressible against Database's public
/// transactional surface is expressible as a command — that is the
/// invariant that keeps the server thin.
///
/// Tid convention: `kCurrentTxn` (0) in a command's tid field means
/// "this session's most recently begun, still-open transaction". It
/// exists for pipelining: a client can send Begin+Write+Commit in one
/// batch without waiting to learn the new tid. Fields referring to
/// *other* transactions (delegation/permit targets) are always
/// explicit kernel tids.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/object_set.h"
#include "common/op_set.h"
#include "common/result.h"
#include "common/status.h"
#include "core/descriptors.h"

namespace asset::api {

/// Protocol magic ("ASET" as a little-endian u32) and version, both
/// carried by the mandatory kHello first command of a connection.
inline constexpr uint32_t kProtocolMagic = 0x54455341;
/// v2 added the per-command flags byte and the optional deadline field
/// to the command envelope (see EncodeCommand); v3 added the optional
/// trace-context field (trace id + span id) plus the kDumpTrace and
/// kSlowLog admin commands.
inline constexpr uint16_t kProtocolVersion = 3;
/// Oldest peer version the handshake still accepts. A v2 client speaks
/// a strict subset of v3 (no trace flag, no tags 18/19), so the server
/// interoperates without translation.
inline constexpr uint16_t kMinProtocolVersion = 2;

/// In a command's `tid` field: the session's current transaction.
inline constexpr Tid kCurrentTxn = kNullTid;

/// In kPermit's `tid2` field: grant to any transaction (the PermitAny
/// form). Distinct from kCurrentTxn, which resolves to the session's
/// own current transaction.
inline constexpr Tid kAnyTxn = UINT64_MAX;

/// Every operation of the command API. Values are wire-stable: append
/// only, never renumber (docs/NETWORK.md tracks the enum).
enum class CommandType : uint8_t {
  kHello = 1,          ///< magic+version handshake; must be first
  kPing = 2,           ///< liveness no-op
  kBegin = 3,          ///< open a session transaction -> tid
  kCommit = 4,         ///< commit `tid`
  kAbort = 5,          ///< abort `tid`
  kCreate = 6,         ///< create object from `payload` under `tid` -> oid
  kGet = 7,            ///< read object `oid` under `tid` -> bytes
  kPut = 8,            ///< overwrite object `oid` with `payload`
  kDelete = 9,         ///< delete object `oid`
  kCreateCounter = 10, ///< create counter initialized to `i64` -> oid
  kAdd = 11,           ///< commutative add of `i64` to counter `oid`
  kGetCounter = 12,    ///< read counter `oid` -> i64
  kDelegate = 13,      ///< delegate(tid, tid2, objs)
  kPermit = 14,        ///< permit(tid, tid2|any, objs, ops)
  kDependency = 15,    ///< form_dependency(dep_type, tid, tid2)
  kCheckpoint = 16,    ///< fuzzy checkpoint now
  kMetrics = 17,       ///< Prometheus metrics text -> text
  kDumpTrace = 18,     ///< flight-recorder Chrome trace JSON -> text (v3)
  kSlowLog = 19,       ///< slow-request log JSON -> text (v3)
};

/// True for values that decode to a known CommandType.
bool IsValidCommandType(uint8_t raw);

/// "begin", "put", ... (for logs and tests).
const char* CommandTypeToString(CommandType t);

/// One request. A tagged struct rather than a std::variant: every
/// command is a small fixed shape and the flat form keeps encode/decode
/// and the dispatcher switch readable.
struct Command {
  CommandType type = CommandType::kPing;

  /// Optional deadline: the remaining budget, in milliseconds, this
  /// command is worth executing for (0 = none). Deadlines are *relative*
  /// on the wire — no clock synchronization between client and server is
  /// assumed; the server anchors the budget at the moment the command's
  /// bytes arrived. An expired command is rejected with kTimedOut before
  /// dispatch, and an admitted one has its kernel lock waits bounded by
  /// what is left of the budget, aborting the target transaction on
  /// expiry so it can never half-execute (docs/ROBUSTNESS.md).
  uint32_t deadline_ms = 0;

  /// Optional trace context (0 = untraced). A client stamps a fresh
  /// span id per attempt under one trace id per logical call, and the
  /// server tags every stage span it emits for this command with the
  /// pair — one DumpChromeJson then shows the request crossing client
  /// and server on the shared steady clock. Carried on the wire only
  /// when trace_id != 0 (envelope flag bit 1, v3).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  /// Primary transaction (kCurrentTxn = the session's current).
  Tid tid = kCurrentTxn;
  /// Delegation/permit grantee or dependency dependent. For kPermit,
  /// kNullTid means "any transaction" (the PermitAny form).
  Tid tid2 = kNullTid;
  ObjectId oid = kNullObjectId;
  /// Counter initial value (kCreateCounter) or delta (kAdd).
  int64_t i64 = 0;
  /// DependencyType for kDependency.
  uint8_t dep_type = 0;
  /// OpSet bits for kPermit.
  uint8_t ops = 0;
  /// Object set for kDelegate/kPermit: the wildcard or explicit ids.
  bool objs_all = true;
  std::vector<ObjectId> objs;
  /// Object bytes for kCreate/kPut.
  std::vector<uint8_t> payload;
  /// kHello only.
  uint32_t magic = 0;
  uint16_t version = 0;

  ObjectSet object_set() const {
    return objs_all ? ObjectSet::All() : ObjectSet(objs);
  }

  /// Fluent deadline attachment: `Command::Begin().WithDeadline(50)`.
  Command&& WithDeadline(uint32_t ms) && {
    deadline_ms = ms;
    return std::move(*this);
  }
  Command& WithDeadline(uint32_t ms) & {
    deadline_ms = ms;
    return *this;
  }

  /// Fluent trace-context attachment (trace must be nonzero to ride the
  /// wire): `Command::Get(oid).WithTrace(trace, span)`.
  Command&& WithTrace(uint64_t trace, uint64_t span) && {
    trace_id = trace;
    span_id = span;
    return std::move(*this);
  }
  Command& WithTrace(uint64_t trace, uint64_t span) & {
    trace_id = trace;
    span_id = span;
    return *this;
  }

  // --- Constructors for every shape (the client and tests use these;
  // the field soup above is for the codec and dispatcher) -------------
  static Command Hello();
  static Command Ping();
  static Command Begin();
  static Command Commit(Tid t = kCurrentTxn);
  static Command Abort(Tid t = kCurrentTxn);
  static Command Create(std::span<const uint8_t> data, Tid t = kCurrentTxn);
  static Command Get(ObjectId oid, Tid t = kCurrentTxn);
  static Command Put(ObjectId oid, std::span<const uint8_t> data,
                     Tid t = kCurrentTxn);
  static Command Delete(ObjectId oid, Tid t = kCurrentTxn);
  static Command CreateCounter(int64_t initial, Tid t = kCurrentTxn);
  static Command Add(ObjectId oid, int64_t delta, Tid t = kCurrentTxn);
  static Command GetCounter(ObjectId oid, Tid t = kCurrentTxn);
  static Command Delegate(Tid ti, Tid tj, ObjectSet objs = ObjectSet::All());
  static Command Permit(Tid ti, Tid tj, ObjectSet objs = ObjectSet::All(),
                        OpSet ops = OpSet::All());
  static Command PermitAnyTxn(Tid ti, ObjectSet objs = ObjectSet::All(),
                              OpSet ops = OpSet::All());
  static Command Dependency(DependencyType type, Tid ti, Tid tj);
  static Command Checkpoint();
  static Command Metrics();
  static Command DumpTrace();
  static Command SlowLog();
};

/// What a reply carries besides its status.
enum class ReplyValueKind : uint8_t {
  kNone = 0,
  kTid = 1,
  kOid = 2,
  kI64 = 3,
  kBytes = 4,
  kText = 5,
};

/// One response. Replies are self-describing (status + tagged value),
/// so a pipelining client can decode them without remembering which
/// request each answers — only the order matters.
struct Reply {
  StatusCode code = StatusCode::kOk;
  std::string message;
  ReplyValueKind kind = ReplyValueKind::kNone;
  uint64_t u64 = 0;  ///< kTid / kOid
  int64_t i64 = 0;   ///< kI64
  std::vector<uint8_t> bytes;
  std::string text;

  bool ok() const { return code == StatusCode::kOk; }
  /// The reply's status (OK or code+message).
  Status ToStatus() const;

  static Reply Ok();
  static Reply OkTid(Tid t);
  static Reply OkOid(ObjectId oid);
  static Reply OkI64(int64_t v);
  static Reply OkBytes(std::vector<uint8_t> b);
  static Reply OkText(std::string t);
  static Reply FromStatus(const Status& s);
};

// --- Codec -----------------------------------------------------------
//
// Encoders append one *payload* (no frame header) to `out`; wrap with
// AppendFrame for the wire. Decoders take exactly one payload and
// reject truncation, unknown tags, overrunning inner lengths, and
// trailing garbage — a decode error on the server closes the
// connection, so the codec is strict by design.

void EncodeCommand(const Command& cmd, std::vector<uint8_t>* out);
Result<Command> DecodeCommand(std::span<const uint8_t> payload);

void EncodeReply(const Reply& reply, std::vector<uint8_t>* out);
Result<Reply> DecodeReply(std::span<const uint8_t> payload);

}  // namespace asset::api

#endif  // ASSET_API_COMMAND_H_
