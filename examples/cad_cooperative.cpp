// Cooperative design (§3.2.1): two long-running designer transactions
// refine one shared design object *concurrently*, exchanging permits so
// neither blocks the other, with group-commit coupling so the final
// design lands only if both designers finish successfully.
//
// This is the CAD scenario from the paper's introduction: strict
// serializability would force one designer to wait hours for the other;
// ASSET's permit/dependency primitives express the intended
// interleaving directly.

#include <atomic>
#include <cstdio>
#include <thread>

#include "core/database.h"
#include "models/atomic.h"
#include "models/cooperative.h"

using asset::Database;
using asset::ObjectId;
using asset::ObjectSet;
using asset::Tid;

namespace {

struct Design {
  int64_t revision;
  int64_t width;
  int64_t height;
  char last_editor[16];
};

}  // namespace

int main() {
  auto db = Database::Open().value();

  ObjectId design = 0;
  asset::models::RunAtomic(*db, [&] {
    design = db->Create(Design{0, 100, 100, "init"}).value();
  });

  // Alternation protocol between the designers (volatile coordination —
  // fine, it does not outlive the transactions).
  std::atomic<int> turn{0};

  auto designer = [&](const char* name, int me, int rounds,
                      int64_t Design::*field, int64_t delta) {
    Tid self = Database::Self();
    for (int r = 0; r < rounds; ++r) {
      while (turn.load() % 2 != me) std::this_thread::yield();
      auto d = db->Get<Design>(design, self);
      if (!d.ok()) return;
      Design next = *d;
      next.revision += 1;
      next.*field += delta;
      std::snprintf(next.last_editor, sizeof(next.last_editor), "%s", name);
      if (!db->Put(design, next, self).ok()) return;
      std::printf("  %-5s rev=%lld width=%lld height=%lld\n", name,
                  (long long)next.revision, (long long)next.width,
                  (long long)next.height);
      turn.fetch_add(1);
    }
  };

  // Two designers, initiated (not yet begun) so permits can be set up
  // first — the §2.2 design point.
  Tid alice = db->Initiate([&] {
    designer("alice", 0, 4, &Design::width, +10);
  });
  Tid bob = db->Initiate([&] {
    designer("bob", 1, 4, &Design::height, -5);
  });

  // Enroll both in a cooperative group over the design object: mutual
  // permits plus GC coupling (both designs land or neither).
  asset::models::CooperativeGroup group(
      *db, ObjectSet{design}, asset::models::CommitCoupling::kAtomic);
  group.Enroll(alice).ok();
  group.Enroll(bob).ok();

  std::printf("designers working concurrently on one object:\n");
  db->Begin({alice, bob});
  bool committed = group.CommitAll();
  std::printf("cooperative session %s\n",
              committed ? "committed as a group" : "aborted as a group");

  asset::models::RunAtomic(*db, [&] {
    auto d = db->Get<Design>(design).value();
    std::printf("final design: rev=%lld width=%lld height=%lld by=%s\n",
                (long long)d.revision, (long long)d.width,
                (long long)d.height, d.last_editor);
  });

  auto stats = db->Stats();
  std::printf("lock suspensions (permit ping-pong): %llu\n",
              (unsigned long long)stats.lock_suspensions);
  return 0;
}
