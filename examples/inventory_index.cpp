// Indexed inventory: the Ode layer (catalog + transactional B+-tree)
// combined with the ASSET models — an order-processing saga whose index
// updates commit and compensate with the rest of each step, and
// semantic counters tallying order statistics without write conflicts.
//
// Run: inventory_index

#include <cstdio>

#include "core/database.h"
#include "models/atomic.h"
#include "models/saga.h"
#include "ode/btree.h"
#include "ode/catalog.h"

using asset::Database;
using asset::ObjectId;
using asset::Tid;
using asset::ode::BTree;
using asset::ode::Catalog;

namespace {

struct Item {
  int64_t sku;
  int64_t stock;
  int64_t price;
};

}  // namespace

int main() {
  auto db = Database::Open().value();
  Catalog catalog(db.get());

  // Schema setup: an index over SKUs and a couple of statistics
  // counters, all registered under well-known names.
  asset::models::RunAtomic(*db, [&] {
    Tid self = Database::Self();
    catalog.Bootstrap(self).ok();
    auto tree = BTree::Create(db.get(), self);
    catalog.Bind(self, "sku_index", tree->header_oid()).ok();
    catalog.Bind(self, "orders_placed", db->CreateCounter(0).value()).ok();
    catalog.Bind(self, "revenue_cents", db->CreateCounter(0).value()).ok();
  });

  // Load the inventory.
  asset::models::RunAtomic(*db, [&] {
    Tid self = Database::Self();
    BTree index =
        BTree::Open(db.get(), catalog.Lookup(self, "sku_index").value());
    for (int64_t sku = 1000; sku < 1016; ++sku) {
      Item item{sku, /*stock=*/3, /*price=*/2500 + (sku % 7) * 100};
      ObjectId oid = db->Create(item, self).value();
      index.Insert(self, sku, oid).value();
    }
  });

  // Order processing: each order is a saga — reserve stock, then record
  // revenue; a failure at the second step releases the reservation.
  auto place_order = [&](int64_t sku, bool payment_ok) {
    asset::models::Saga saga;
    saga.AddStep(
        [&, sku] {  // reserve stock (via the index)
          Tid self = Database::Self();
          BTree index =
              BTree::Open(db.get(), catalog.Lookup(self, "sku_index").value());
          auto oid = index.Search(self, sku);
          if (!oid.ok()) {
            db->Abort(self);
            return;
          }
          auto item = db->Get<Item>(*oid, self).value();
          if (item.stock == 0) {
            db->Abort(self);
            return;
          }
          item.stock--;
          db->Put(*oid, item, self).ok();
        },
        [&, sku] {  // compensation: put the unit back
          Tid self = Database::Self();
          BTree index =
              BTree::Open(db.get(), catalog.Lookup(self, "sku_index").value());
          auto oid = index.Search(self, sku).value();
          auto item = db->Get<Item>(oid, self).value();
          item.stock++;
          db->Put(oid, item, self).ok();
        });
    saga.AddStep([&, sku, payment_ok] {  // charge + tally
      Tid self = Database::Self();
      if (!payment_ok) {
        db->Abort(self);
        return;
      }
      BTree index =
          BTree::Open(db.get(), catalog.Lookup(self, "sku_index").value());
      auto oid = index.Search(self, sku).value();
      auto item = db->Get<Item>(oid, self).value();
      // Counters use semantic increments: concurrent orders never
      // conflict on the statistics.
      db->Add(catalog.Lookup(self, "orders_placed").value(), 1, self).ok();
      db->Add(catalog.Lookup(self, "revenue_cents").value(), item.price,
              self)
          .ok();
    });
    return saga.Run(*db).committed;
  };

  int ok_orders = 0, failed_orders = 0;
  for (int i = 0; i < 20; ++i) {
    int64_t sku = 1000 + (i * 5) % 16;
    bool payment_ok = i % 4 != 3;  // every 4th card is declined
    if (place_order(sku, payment_ok)) {
      ok_orders++;
    } else {
      failed_orders++;
    }
  }

  asset::models::RunAtomic(*db, [&] {
    Tid self = Database::Self();
    BTree index =
        BTree::Open(db.get(), catalog.Lookup(self, "sku_index").value());
    std::printf("orders: %d fulfilled, %d failed (compensated)\n", ok_orders,
                failed_orders);
    std::printf("stats : placed=%lld revenue=%lld cents\n",
                (long long)db->GetCounter(
                               catalog.Lookup(self, "orders_placed").value())
                    .value(),
                (long long)db->GetCounter(
                               catalog.Lookup(self, "revenue_cents").value())
                    .value());
    int64_t total_stock = 0;
    for (auto& entry : index.Range(self, 1000, 1015).value()) {
      auto item = db->Get<Item>(entry.value, self).value();
      total_stock += item.stock;
    }
    std::printf("stock : %lld units remain (started with 48)\n",
                (long long)total_stock);
    std::printf("check : stock + fulfilled == 48? %s\n",
                total_stock + ok_orders == 48 ? "yes" : "NO");
  });
  return 0;
}
