// The paper's §3.1.4 nested transaction, written two ways:
//
//  1. with the model layer (RunSubtransaction), and
//  2. with the raw primitives, exactly as the paper synthesizes the
//     `trip` function:
//
//        t1 = initiate(make_airline_reservation);
//        permit(self(), t1);
//        begin(t1);
//        if (!wait(t1)) abort(self());
//        delegate(t1, self());
//        commit(t1);
//        ... same for the hotel ...
//
// The scaffolding around the trip (slot setup, reporting, reset) uses
// the RAII Txn handle; the trip bodies themselves stay on the raw
// primitives to mirror the paper.
//
// Run:
//   nested_trip            # both reservations succeed
//   nested_trip no-hotel   # hotel fails -> the whole trip (including
//                          # the airline reservation) is undone

#include <cstdio>
#include <cstring>

#include "core/database.h"
#include "models/atomic.h"
#include "models/nested.h"

using asset::Database;
using asset::ObjectId;
using asset::Tid;
using asset::Txn;

namespace {

struct Slots {
  ObjectId airline;
  ObjectId hotel;
};

void Report(Database& db, const Slots& s, const char* label) {
  Txn t = db.Begin().value();
  std::printf("%s: airline=%lld hotel=%lld\n", label,
              (long long)t.Get<int64_t>(s.airline).value(),
              (long long)t.Get<int64_t>(s.hotel).value());
  t.Commit().ok();
}

}  // namespace

int main(int argc, char** argv) {
  bool hotel_available = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "no-hotel") == 0) hotel_available = false;
  }

  auto db = Database::Open().value();

  Slots s{};
  {
    Txn t = db->Begin().value();
    s.airline = t.Create<int64_t>(0).value();
    s.hotel = t.Create<int64_t>(0).value();
    t.Commit().ok();
  }

  // --- Version 1: the model layer ------------------------------------
  bool ok = asset::models::RunNestedRoot(*db, [&] {
    asset::models::RunSubtransaction(
        *db,
        [&] { db->Put<int64_t>(s.airline, 1).ok(); },
        asset::models::OnChildAbort::kAbortParent)
        .ok();
    asset::models::RunSubtransaction(
        *db,
        [&] {
          if (!hotel_available) {
            db->Abort(Database::Self());
            return;
          }
          db->Put<int64_t>(s.hotel, 1).ok();
        },
        asset::models::OnChildAbort::kAbortParent)
        .ok();
  });
  std::printf("model-layer trip %s\n", ok ? "committed" : "aborted");
  Report(*db, s, "after model-layer trip");

  // Reset.
  {
    Txn t = db->Begin().value();
    t.Put<int64_t>(s.airline, 0).ok();
    t.Put<int64_t>(s.hotel, 0).ok();
    t.Commit().ok();
  }

  // --- Version 2: the paper's raw-primitive synthesis -----------------
  auto make_airline_reservation = [&] {
    db->Put<int64_t>(s.airline, 1).ok();
  };
  auto make_hotel_reservation = [&] {
    if (!hotel_available) {
      db->Abort(Database::Self());
      return;
    }
    db->Put<int64_t>(s.hotel, 1).ok();
  };

  auto trip = [&] {
    Tid self = Database::Self();
    {
      Tid t1 = db->Initiate(make_airline_reservation);
      db->Permit(self, t1).ok();
      db->Begin(t1);
      if (!db->Wait(t1)) {
        db->Abort(self);
        return;
      }
      db->Delegate(t1, self).ok();
      db->Commit(t1);
    }
    {
      Tid t2 = db->Initiate(make_hotel_reservation);
      db->Permit(self, t2).ok();
      db->Begin(t2);
      if (!db->Wait(t2)) {
        db->Abort(self);
        return;
      }
      db->Delegate(t2, self).ok();
      db->Commit(t2);
    }
  };

  Tid t = db->Initiate(trip);
  db->Begin(t);
  bool committed = db->Commit(t);
  std::printf("raw-primitive trip %s\n", committed ? "committed" : "aborted");
  Report(*db, s, "after raw-primitive trip");
  return 0;
}
