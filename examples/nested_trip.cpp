// The paper's §3.1.4 nested transaction, written two ways:
//
//  1. with the model layer (RunSubtransaction), and
//  2. with the raw primitives, exactly as the paper synthesizes the
//     `trip` function:
//
//        t1 = initiate(make_airline_reservation);
//        permit(self(), t1);
//        begin(t1);
//        if (!wait(t1)) abort(self());
//        delegate(t1, self());
//        commit(t1);
//        ... same for the hotel ...
//
// The scaffolding around the trip (slot setup, reporting, reset) uses
// the RAII Txn handle; the trip bodies themselves stay on the raw
// primitives to mirror the paper.
//
// Run:
//   nested_trip            # both reservations succeed
//   nested_trip no-hotel   # hotel fails -> the whole trip (including
//                          # the airline reservation) is undone

#include <cstdio>
#include <cstring>

#include "core/database.h"
#include "models/atomic.h"
#include "models/nested.h"

using asset::Database;
using asset::ObjectId;
using asset::Tid;
using asset::TransactionManager;
using asset::Txn;

namespace {

struct Slots {
  ObjectId airline;
  ObjectId hotel;
};

void Report(Database& db, const Slots& s, const char* label) {
  Txn t = db.Begin().value();
  std::printf("%s: airline=%lld hotel=%lld\n", label,
              (long long)t.Get<int64_t>(s.airline).value(),
              (long long)t.Get<int64_t>(s.hotel).value());
  t.Commit().ok();
}

}  // namespace

int main(int argc, char** argv) {
  bool hotel_available = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "no-hotel") == 0) hotel_available = false;
  }

  auto db = Database::Open().value();
  TransactionManager& tm = db->txn();

  Slots s{};
  {
    Txn t = db->Begin().value();
    s.airline = t.Create<int64_t>(0).value();
    s.hotel = t.Create<int64_t>(0).value();
    t.Commit().ok();
  }

  // --- Version 1: the model layer ------------------------------------
  bool ok = asset::models::RunNestedRoot(tm, [&] {
    asset::models::RunSubtransaction(
        tm,
        [&] { db->Put<int64_t>(s.airline, 1).ok(); },
        asset::models::OnChildAbort::kAbortParent)
        .ok();
    asset::models::RunSubtransaction(
        tm,
        [&] {
          if (!hotel_available) {
            tm.Abort(TransactionManager::Self());
            return;
          }
          db->Put<int64_t>(s.hotel, 1).ok();
        },
        asset::models::OnChildAbort::kAbortParent)
        .ok();
  });
  std::printf("model-layer trip %s\n", ok ? "committed" : "aborted");
  Report(*db, s, "after model-layer trip");

  // Reset.
  {
    Txn t = db->Begin().value();
    t.Put<int64_t>(s.airline, 0).ok();
    t.Put<int64_t>(s.hotel, 0).ok();
    t.Commit().ok();
  }

  // --- Version 2: the paper's raw-primitive synthesis -----------------
  auto make_airline_reservation = [&] {
    db->Put<int64_t>(s.airline, 1).ok();
  };
  auto make_hotel_reservation = [&] {
    if (!hotel_available) {
      tm.Abort(TransactionManager::Self());
      return;
    }
    db->Put<int64_t>(s.hotel, 1).ok();
  };

  auto trip = [&] {
    Tid self = TransactionManager::Self();
    {
      Tid t1 = tm.Initiate(make_airline_reservation);
      tm.Permit(self, t1).ok();
      tm.Begin(t1);
      if (!tm.Wait(t1)) {
        tm.Abort(self);
        return;
      }
      tm.Delegate(t1, self).ok();
      tm.Commit(t1);
    }
    {
      Tid t2 = tm.Initiate(make_hotel_reservation);
      tm.Permit(self, t2).ok();
      tm.Begin(t2);
      if (!tm.Wait(t2)) {
        tm.Abort(self);
        return;
      }
      tm.Delegate(t2, self).ok();
      tm.Commit(t2);
    }
  };

  Tid t = tm.Initiate(trip);
  tm.Begin(t);
  bool committed = tm.Commit(t);
  std::printf("raw-primitive trip %s\n", committed ? "committed" : "aborted");
  Report(*db, s, "after raw-primitive trip");
  return 0;
}
