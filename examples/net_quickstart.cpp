// Network quickstart: start the wire server over an in-process
// database, connect with the client library, and run the quickstart
// workload over TCP — begin a session transaction, create and update
// objects and counters, commit, and watch an abort roll back. Ends by
// scraping the metrics endpoint. This is also what the CI server smoke
// job runs.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/net_quickstart
//
// Frame format, command set, and limits: docs/NETWORK.md.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/command.h"
#include "client/client.h"
#include "core/database.h"
#include "server/server.h"

using asset::Database;
using asset::ObjectId;
using asset::Tid;
using asset::client::Client;
using asset::server::Server;

static void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

int main() {
  // 1. One process can host both ends: the server owns no database, it
  //    serves one. Port 0 binds an ephemeral port.
  auto db = Database::Open().value();
  Server::Options opts;
  opts.workers = 2;
  auto server = Server::Start(db.get(), opts).value();
  std::printf("server listening on 127.0.0.1:%u\n", server->port());

  // 2. Connect. Connect() performs the version handshake (kHello);
  //    everything else is rejected until it happens.
  auto client = Client::Connect("127.0.0.1", server->port()).value();

  // 3. The quickstart workload, over the wire. Typed wrappers default
  //    to kCurrentTxn = "the session's most recent open transaction",
  //    so Begin/ops/Commit reads like the in-process RAII flow.
  Tid t = client->Begin().value();
  std::vector<uint8_t> hundred = {100, 0, 0, 0, 0, 0, 0, 0};
  std::vector<uint8_t> fifty = {50, 0, 0, 0, 0, 0, 0, 0};
  ObjectId alice = client->Create(hundred).value();
  ObjectId bob = client->Create(fifty).value();
  Check(client->Commit().ok(), "commit creates");
  std::printf("created accounts over TCP: alice=%llu bob=%llu (txn %llu)\n",
              (unsigned long long)alice, (unsigned long long)bob,
              (unsigned long long)t);

  // 4. Transfer 30 in one transaction — but pipelined: five frames go
  //    out in one flush, five replies come back in order. One network
  //    round trip for the whole transaction.
  std::vector<uint8_t> seventy = {70, 0, 0, 0, 0, 0, 0, 0};
  std::vector<uint8_t> eighty = {80, 0, 0, 0, 0, 0, 0, 0};
  client->Send(asset::api::Command::Begin());
  client->Send(asset::api::Command::Put(alice, seventy));
  client->Send(asset::api::Command::Put(bob, eighty));
  client->Send(asset::api::Command::Commit());
  Check(client->Flush().ok(), "flush pipelined batch");
  for (int i = 0; i < 4; ++i) {
    auto r = client->Receive();
    Check(r.ok() && r.value().code == asset::StatusCode::kOk,
          "pipelined reply");
  }
  std::printf("transferred 30 in one pipelined round trip\n");

  // 5. Aborts roll back over the wire exactly like in-process.
  Check(client->Begin().ok(), "begin doomed txn");
  std::vector<uint8_t> zero = {0, 0, 0, 0, 0, 0, 0, 0};
  Check(client->Put(alice, zero).ok(), "tentative overwrite");
  Check(client->Abort().ok(), "abort");
  Check(client->Begin().ok(), "begin reader");
  auto bytes = client->Get(alice).value();
  Check(client->Commit().ok(), "commit reader");
  Check(bytes == seventy, "abort rolled the write back");
  std::printf("abort rolled back: alice still holds 70\n");

  // 6. Counters: the kernel's commutative increments, over the wire.
  Check(client->Begin().ok(), "begin counter txn");
  ObjectId hits = client->CreateCounter(0).value();
  Check(client->Add(hits, 41).ok(), "add 41");
  Check(client->Add(hits, 1).ok(), "add 1");
  Check(client->Commit().ok(), "commit counter");
  Check(client->Begin().ok(), "begin counter read");
  long long total = client->GetCounter(hits).value();
  Check(client->Commit().ok(), "commit counter read");
  std::printf("counter after two adds: %lld\n", total);
  Check(total == 42, "counter sums increments");

  // 7. The metrics command returns kernel + asset_server_* families —
  //    the same text an ops scrape would read.
  std::string metrics = client->Metrics().value();
  Check(metrics.find("asset_txns_committed") != std::string::npos,
        "kernel metrics present");
  Check(metrics.find("asset_server_frames_in_total") != std::string::npos,
        "server metrics present");
  std::printf("metrics scrape: %zu bytes, both families present\n",
              metrics.size());

  // 8. Wire tracing (env-gated so the default run stays quiet): with
  //    ASSET_NET_TRACE=<file>, run a traced workload and drain the
  //    flight recorder over the wire via kDumpTrace. The dump holds the
  //    client round trips, the server stage spans, and the kernel
  //    events on one timeline, correlated by trace id. CI's trace-smoke
  //    job validates the JSON and the correlation.
  if (const char* trace_path = std::getenv("ASSET_NET_TRACE")) {
    db->set_trace_enabled(true);
    Client::Options copts;
    copts.trace_recorder = &db->trace_recorder();
    auto traced =
        Client::Connect("127.0.0.1", server->port(), copts).value();
    Check(traced->Begin().ok(), "traced begin");
    ObjectId obj = traced->Create(hundred).value();
    Check(traced->Put(obj, fifty).ok(), "traced put");
    Check(traced->Commit().ok(), "traced commit");
    unsigned long long trace_id = traced->last_trace_id();
    Check(trace_id != 0, "commit carried a wire trace id");

    std::string json = traced->DumpTrace().value();
    Check(json.find("\"traceEvents\"") != std::string::npos,
          "dump is a Chrome trace");
    std::FILE* f = std::fopen(trace_path, "w");
    Check(f != nullptr, "open trace file");
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wire trace: %zu bytes -> %s (last trace id %llu)\n",
                json.size(), trace_path, trace_id);
  }

  server->Shutdown();
  std::printf("net_quickstart: OK\n");
  return 0;
}
