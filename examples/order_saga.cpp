// Order-fulfillment saga (§3.1.6): a long-lived activity broken into
// independently-committing component transactions with compensations.
//
//   t1: reserve inventory          ct1: release inventory
//   t2: charge the customer        ct2: refund the customer
//   t3: schedule shipping          (last step: commits the saga)
//
// Component transactions commit as they go — other activity sees their
// effects immediately (isolation only at the component level). When a
// later component fails, the committed prefix is undone *semantically*
// by the compensating transactions, in reverse order, each retried
// until it commits.
//
// Run:
//   order_saga            # happy path
//   order_saga no-truck   # shipping fails -> charge and reservation
//                         # are compensated

#include <cstdio>
#include <cstring>

#include "core/database.h"
#include "models/atomic.h"
#include "models/saga.h"

using asset::Database;
using asset::ObjectId;

int main(int argc, char** argv) {
  bool truck_available = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "no-truck") == 0) truck_available = false;
  }

  auto db = Database::Open().value();

  ObjectId inventory = 0, balance = 0, shipments = 0;
  asset::models::RunAtomic(*db, [&] {
    inventory = db->Create<int64_t>(5).value();    // units in stock
    balance = db->Create<int64_t>(200).value();    // customer balance
    shipments = db->Create<int64_t>(0).value();    // scheduled shipments
  });

  constexpr int64_t kPrice = 80;

  auto adjust = [&](ObjectId obj, int64_t delta, const char* what) {
    int64_t v = db->Get<int64_t>(obj).value();
    db->Put<int64_t>(obj, v + delta).ok();
    std::printf("  %-22s %lld -> %lld\n", what, (long long)v,
                (long long)(v + delta));
  };

  asset::models::Saga saga;
  saga.AddStep([&] { adjust(inventory, -1, "reserve inventory"); },
               [&] { adjust(inventory, +1, "RELEASE inventory"); });
  saga.AddStep([&] { adjust(balance, -kPrice, "charge customer"); },
               [&] { adjust(balance, +kPrice, "REFUND customer"); });
  saga.AddStep([&] {
    if (!truck_available) {
      std::printf("  schedule shipping      FAILED (no truck)\n");
      db->Abort(Database::Self());
      return;
    }
    adjust(shipments, +1, "schedule shipping");
  });

  std::printf("running order saga...\n");
  auto out = saga.Run(*db);
  std::printf("\nsaga %s: %zu/%zu steps committed, %zu compensations\n",
              out.committed ? "COMMITTED" : "ABORTED", out.steps_committed,
              saga.size(), out.compensations_run);

  asset::models::RunAtomic(*db, [&] {
    std::printf("final state: inventory=%lld balance=%lld shipments=%lld\n",
                (long long)db->Get<int64_t>(inventory).value(),
                (long long)db->Get<int64_t>(balance).value(),
                (long long)db->Get<int64_t>(shipments).value());
  });
  return out.committed ? 0 : 1;
}
