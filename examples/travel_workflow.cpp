// The paper's appendix workflow, X_conference: person X flies NY → LA
// for a conference (June 11-14, 1994), staying at hotel Equator.
//
//  * Flight: Delta, then United, then American, in that order; no other
//    airline — a required contingent step.
//  * Hotel: Equator only — required; failure compensates (cancels) the
//    flight reservation already made.
//  * Car: National and Avis raced in parallel; whichever completes
//    first wins; if neither, the trip still proceeds (public
//    transportation) — an optional step.
//
// Run with an argument to exercise failure paths:
//   travel_workflow            # everything available
//   travel_workflow no-hotel   # hotel full: flight is compensated
//   travel_workflow no-delta   # Delta full: United gets the booking

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "core/database.h"
#include "models/atomic.h"
#include "models/workflow.h"

using asset::Database;
using asset::ObjectId;
using asset::models::Workflow;

namespace {

struct Reservation {
  char holder[24];
  char dates[16];
  int64_t booked;
};

Reservation MakeReservation(const char* holder, bool booked) {
  Reservation r{};
  std::snprintf(r.holder, sizeof(r.holder), "%s", holder);
  std::snprintf(r.dates, sizeof(r.dates), "%s", "6/11-6/14/1994");
  r.booked = booked ? 1 : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool delta_available = true;
  bool hotel_available = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "no-delta") == 0) delta_available = false;
    if (std::strcmp(argv[i], "no-hotel") == 0) hotel_available = false;
  }

  auto db = Database::Open().value();

  // Reservation records in the database.
  ObjectId flight = 0, hotel = 0, car = 0;
  asset::models::RunAtomic(*db, [&] {
    flight = db->Create(MakeReservation("none", false)).value();
    hotel = db->Create(MakeReservation("none", false)).value();
    car = db->Create(MakeReservation("none", false)).value();
  });

  auto reserve = [&](ObjectId slot, const char* who, bool available) {
    return [&db, slot, who, available] {
      if (!available) {
        std::printf("  %-8s : sold out\n", who);
        db->Abort(Database::Self());
        return;
      }
      db->Put(slot, MakeReservation(who, true)).ok();
      std::printf("  %-8s : reserved\n", who);
    };
  };

  Workflow wf;

  // Flight: the §3.1.3-style cascade from the appendix.
  Workflow::Step flights;
  flights.name = "flight";
  flights.alternatives = {
      reserve(flight, "Delta", delta_available),
      reserve(flight, "United", true),
      reserve(flight, "American", true),
  };
  flights.compensation = [&] {
    // cancel_flight_reservation — retried until it commits.
    db->Put(flight, MakeReservation("cancelled", false)).ok();
    std::printf("  flight   : cancelled (compensation)\n");
  };
  wf.AddStep(std::move(flights));

  // Hotel: required; no alternatives — the trip dies without Equator.
  wf.AddRequired("hotel", reserve(hotel, "Equator", hotel_available));

  // Car: National vs Avis raced; first completion wins; optional.
  Workflow::Step cars;
  cars.name = "car";
  cars.mode = Workflow::Mode::kRace;
  cars.required = false;
  cars.alternatives = {
      [&] {
        // National's booking system is slow today.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        db->Put(car, MakeReservation("National", true)).ok();
      },
      [&] { db->Put(car, MakeReservation("Avis", true)).ok(); },
  };
  wf.AddStep(std::move(cars));

  std::printf("running X_conference workflow...\n");
  auto out = wf.Run(*db);

  std::printf("\nworkflow %s\n", out.succeeded ? "SUCCEEDED" : "FAILED");
  for (const auto& step : out.steps) {
    std::printf("  step %-7s -> %s (alternative %d)\n", step.name.c_str(),
                step.committed ? "committed" : "failed", step.winner);
  }
  if (out.compensations_run > 0) {
    std::printf("  compensations run: %zu\n", out.compensations_run);
  }

  asset::models::RunAtomic(*db, [&] {
    auto f = db->Get<Reservation>(flight).value();
    auto h = db->Get<Reservation>(hotel).value();
    auto c = db->Get<Reservation>(car).value();
    std::printf("\nfinal reservations:\n");
    std::printf("  flight : %-10s booked=%lld\n", f.holder,
                (long long)f.booked);
    std::printf("  hotel  : %-10s booked=%lld\n", h.holder,
                (long long)h.booked);
    std::printf("  car    : %-10s booked=%lld\n", c.holder,
                (long long)c.booked);
  });
  return out.succeeded ? 0 : 1;
}
