// Quickstart: open a database, run atomic transactions through the RAII
// Txn handle, observe abort rollback, and take a peek at the transaction
// primitives underneath.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "core/database.h"

using asset::Database;
using asset::ObjectId;
using asset::Tid;
using asset::Txn;

int main() {
  // 1. Open an in-memory database (pass Options{.path = "file.db"} for a
  //    file-backed one). ASSET_TRACE=<path> turns the flight recorder on
  //    and writes the run's Chrome trace there at the end — load it in
  //    chrome://tracing or ui.perfetto.dev (see docs/OBSERVABILITY.md).
  const char* trace_path = std::getenv("ASSET_TRACE");
  Database::Options options;
  options.txn.trace.enabled = trace_path != nullptr;
  auto db = Database::Open(options).value();

  // 2. db->Begin() hands back an owning transaction handle. Operations
  //    go through the handle; Commit() makes them durable atomically.
  ObjectId alice = 0, bob = 0;
  {
    Txn t = db->Begin().value();
    alice = t.Create<int64_t>(100).value();
    bob = t.Create<int64_t>(50).value();
    t.Commit().ok();
  }
  std::printf("created accounts: alice=%llu bob=%llu\n",
              (unsigned long long)alice, (unsigned long long)bob);

  // 3. A transfer: all-or-nothing.
  {
    Txn t = db->Begin().value();
    int64_t a = t.Get<int64_t>(alice).value();
    int64_t b = t.Get<int64_t>(bob).value();
    t.Put<int64_t>(alice, a - 30).ok();
    t.Put<int64_t>(bob, b + 30).ok();
    std::printf("transfer committed=%d\n", t.Commit().ok());
  }

  // 4. An aborted transaction leaves no trace — and a handle that goes
  //    out of scope without Commit() aborts automatically, so an early
  //    return can never leak a half-done transfer.
  {
    Txn t = db->Begin().value();
    t.Put<int64_t>(alice, -999999).ok();
    t.Abort().ok();  // change of heart (the destructor would do the same)
  }

  {
    Txn t = db->Begin().value();
    std::printf("final: alice=%lld bob=%lld (total conserved: %s)\n",
                (long long)t.Get<int64_t>(alice).value(),
                (long long)t.Get<int64_t>(bob).value(),
                t.Get<int64_t>(alice).value() + t.Get<int64_t>(bob).value() ==
                        150
                    ? "yes"
                    : "NO");
    t.Commit().ok();
  }

  // 5. The raw primitives the handle (and the model layer) are built
  //    from (§2.1): initiate registers, begin starts, completion is
  //    recorded, commit is explicit and blocking.
  Tid t = db->Initiate(
      [&](int bonus) {
        int64_t a = db->Get<int64_t>(alice).value();
        db->Put<int64_t>(alice, a + bonus).ok();
      },
      5);
  db->Begin(t);
  db->Wait(t);  // code finished; locks still held, changes volatile
  std::printf("after wait, status=%s\n",
              asset::TxnStatusToString(db->StatusOf(t)));
  db->Commit(t);
  std::printf("after commit, status=%s\n",
              asset::TxnStatusToString(db->StatusOf(t)));

  // 6. Kernel statistics.
  std::printf("stats: %s\n", db->Stats().ToString().c_str());

  // 7. Observability: everything above was recorded if tracing is on.
  if (trace_path != nullptr) {
    std::string trace = db->DumpTrace();
    if (FILE* f = std::fopen(trace_path, "w")) {
      std::fwrite(trace.data(), 1, trace.size(), f);
      std::fclose(f);
      std::printf("trace: %zu bytes of Chrome trace JSON -> %s\n",
                  trace.size(), trace_path);
    }
  }
  return 0;
}
