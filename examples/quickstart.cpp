// Quickstart: open a database, run atomic transactions, observe abort
// rollback, and take a peek at the transaction primitives underneath.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/database.h"
#include "models/atomic.h"

using asset::Database;
using asset::ObjectId;
using asset::Tid;
using asset::TransactionManager;

int main() {
  // 1. Open an in-memory database (pass Options{.path = "file.db"} for a
  //    file-backed one).
  auto db = Database::Open().value();
  TransactionManager& tm = db->txn();

  // 2. The model layer: RunAtomic wraps the §3.1.1 translation —
  //    initiate / begin / commit.
  ObjectId alice = 0, bob = 0;
  asset::models::RunAtomic(tm, [&] {
    alice = db->Create<int64_t>(100).value();
    bob = db->Create<int64_t>(50).value();
  });
  std::printf("created accounts: alice=%llu bob=%llu\n",
              (unsigned long long)alice, (unsigned long long)bob);

  // 3. A transfer: all-or-nothing.
  bool committed = asset::models::RunAtomic(tm, [&] {
    int64_t a = db->Get<int64_t>(alice).value();
    int64_t b = db->Get<int64_t>(bob).value();
    db->Put<int64_t>(alice, a - 30).ok();
    db->Put<int64_t>(bob, b + 30).ok();
  });
  std::printf("transfer committed=%d\n", committed);

  // 4. An aborted transaction leaves no trace.
  asset::models::RunAtomic(tm, [&] {
    db->Put<int64_t>(alice, -999999).ok();
    tm.Abort(TransactionManager::Self());  // change of heart
  });

  asset::models::RunAtomic(tm, [&] {
    std::printf("final: alice=%lld bob=%lld (total conserved: %s)\n",
                (long long)db->Get<int64_t>(alice).value(),
                (long long)db->Get<int64_t>(bob).value(),
                db->Get<int64_t>(alice).value() +
                            db->Get<int64_t>(bob).value() ==
                        150
                    ? "yes"
                    : "NO");
  });

  // 5. The raw primitives the models are built from (§2.1): initiate
  //    registers, begin starts, completion is recorded, commit is
  //    explicit and blocking.
  Tid t = tm.Initiate(
      [&](int bonus) {
        int64_t a = db->Get<int64_t>(alice).value();
        db->Put<int64_t>(alice, a + bonus).ok();
      },
      5);
  tm.Begin(t);
  tm.Wait(t);  // code finished; locks still held, changes volatile
  std::printf("after wait, status=%s\n",
              asset::TxnStatusToString(tm.GetStatus(t)));
  tm.Commit(t);
  std::printf("after commit, status=%s\n",
              asset::TxnStatusToString(tm.GetStatus(t)));

  // 6. Kernel statistics.
  std::printf("stats: %s\n", tm.stats().snapshot().ToString().c_str());
  return 0;
}
