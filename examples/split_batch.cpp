// Split transactions for open-ended activities (§3.1.5): a long-running
// batch job periodically splits off the chunk of work it has finished
// and commits that chunk, so results flow out (and locks flow back)
// incrementally while the job keeps running — and the final remainder
// is joined into a finisher transaction.
//
// The classic use: "open-ended activities" (Pu, Kaiser, Hutchinson)
// whose results should stream out instead of appearing all-or-nothing
// at the end.
//
// Run: split_batch

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/database.h"
#include "models/atomic.h"
#include "models/split_join.h"

using asset::Database;
using asset::ObjectId;
using asset::ObjectSet;
using asset::Tid;

int main() {
  auto db = Database::Open().value();

  constexpr int kItems = 10;
  constexpr int kChunk = 3;
  std::vector<ObjectId> items;
  asset::models::RunAtomic(*db, [&] {
    for (int i = 0; i < kItems; ++i) {
      items.push_back(db->Create<int64_t>(0).value());
    }
  });

  // How many items have been published (committed) so far; the poller
  // only reads those, so it never blocks on the batch's held locks.
  std::atomic<int> published{0};

  Tid batch = db->Initiate([&] {
    Tid self = Database::Self();
    std::vector<ObjectId> chunk;
    for (int i = 0; i < kItems; ++i) {
      db->Put<int64_t>(items[i], 1000 + i, self).ok();  // "process" item i
      chunk.push_back(items[i]);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (chunk.size() == kChunk) {
        // s = split trans { }: responsibility for the finished chunk
        // moves to s; committing s publishes it mid-batch.
        auto s = asset::models::Split(*db, ObjectSet(chunk), [] {});
        if (s.ok() && db->Commit(*s)) {
          published.fetch_add(static_cast<int>(chunk.size()));
        }
        chunk.clear();
      }
    }
  });

  db->Begin(batch);
  // Watch results stream out while the batch is still running.
  int last_seen = -1;
  while (db->IsActiveTxn(batch) || last_seen < published.load()) {
    int visible = published.load();
    if (visible != last_seen) {
      int64_t sum = 0;
      asset::models::RunAtomic(*db, [&] {
        for (int i = 0; i < visible; ++i) {
          sum += db->Get<int64_t>(items[i]).value();
        }
      });
      std::printf("published=%2d (checksum %lld) — batch still %s\n",
                  visible, (long long)sum,
                  db->IsActiveTxn(batch) ? "running" : "finishing");
      last_seen = visible;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (db->IsCompleted(batch) && last_seen >= published.load()) break;
  }

  // The last partial chunk still belongs to the batch: join it into a
  // finisher (join(s, t) = wait(s); delegate(s, t)) and commit that.
  Tid finisher = db->Initiate([] {});
  asset::models::Join(*db, batch, finisher).ok();
  db->Commit(batch);  // nothing left in the batch itself
  db->Begin(finisher);
  db->Commit(finisher);

  int64_t done = 0;
  asset::models::RunAtomic(*db, [&] {
    for (ObjectId it : items) {
      done += db->Get<int64_t>(it).value() != 0 ? 1 : 0;
    }
  });
  std::printf("after join + final commit: %lld/%d items visible\n",
              (long long)done, kItems);
  return done == kItems ? 0 : 1;
}
